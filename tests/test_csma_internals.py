"""CSMA internals: proof construction, pruning, CD partitioning, restarts."""

import math
import random

import pytest

from repro.core.csma import (
    CSMAError,
    CSMRule,
    _Branch,
    _execute_cd,
    build_csm_proof,
    csma,
)
from repro.engine.database import Database
from repro.engine.ops import WorkCounter
from repro.engine.relation import Relation
from repro.lattice.builders import lattice_from_query
from repro.lp.cllp import ConditionalLLP, DualCLLP
from repro.query.query import triangle_query


def triangle_setup():
    query = triangle_query()
    lattice, inputs = lattice_from_query(query)
    return query, lattice, inputs


class TestProofConstruction:
    def test_rules_reference_valid_elements(self):
        query, lattice, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        solution = ConditionalLLP.from_cardinalities(
            lattice, inputs, logs
        ).solve()
        rules = build_csm_proof(
            lattice, solution.dual,
            [(lattice.bottom, r) for r in inputs.values()],
        )
        for rule in rules:
            assert 0 <= rule.x < lattice.n
            assert 0 <= rule.y < lattice.n
            if rule.kind == "CD":
                assert lattice.lt(rule.x, rule.y)

    def test_last_effective_rule_produces_top(self):
        query, lattice, inputs = triangle_setup()
        logs = {name: 1.0 for name in inputs}
        solution = ConditionalLLP.from_cardinalities(
            lattice, inputs, logs
        ).solve()
        rules = build_csm_proof(
            lattice, solution.dual,
            [(lattice.bottom, r) for r in inputs.values()],
        )
        last = rules[-1]
        if last.kind == "SM":
            assert lattice.join(last.x, last.y) == lattice.top
        else:
            assert last.y == lattice.top

    def test_empty_dual_raises(self):
        query, lattice, inputs = triangle_setup()
        empty = DualCLLP(lattice, {}, {}, {})
        with pytest.raises(CSMAError):
            build_csm_proof(lattice, empty, [])

    def test_describe_renders(self):
        query, lattice, inputs = triangle_setup()
        x = lattice.index(frozenset("x"))
        xy = lattice.index(frozenset("xy"))
        assert "CD" in CSMRule("CD", x, xy).describe(lattice)
        assert "→" in CSMRule("CC", x, xy).describe(lattice)
        yz = lattice.index(frozenset("yz"))
        assert "SM" in CSMRule("SM", xy, yz).describe(lattice)


class TestCDPartitioning:
    def test_buckets_cover_table(self):
        """Lemma 5.35: buckets partition the guard and bound the degree."""
        query, lattice, inputs = triangle_setup()
        rng = random.Random(0)
        tuples = {(rng.randrange(6), rng.randrange(40)) for _ in range(120)}
        table = Relation("R", ("x", "y"), tuples)
        branch = _Branch(
            tables={inputs["R"]: table}, degree_guards={}
        )
        x_el = lattice.index(frozenset("x"))
        rule = CSMRule("CD", x_el, inputs["R"])
        children = _execute_cd(branch, rule, lattice, WorkCounter())
        total = sum(len(c.tables[inputs["R"]]) for c in children)
        assert total == len(table)
        # Within each bucket: degree range [2^j, 2^{j+1}).
        for child in children:
            sub = child.tables[inputs["R"]]
            degrees = [
                sub.degree({"x": v}) for v in sub.distinct_values("x")
            ]
            assert max(degrees) < 2 * max(1, min(degrees))

    def test_bucket_count_logarithmic(self):
        query, lattice, inputs = triangle_setup()
        tuples = [(0, k) for k in range(64)] + [(j, 0) for j in range(1, 65)]
        table = Relation("R", ("x", "y"), tuples)
        branch = _Branch(tables={inputs["R"]: table}, degree_guards={})
        x_el = lattice.index(frozenset("x"))
        children = _execute_cd(
            branch, CSMRule("CD", x_el, inputs["R"]), lattice, WorkCounter()
        )
        assert len(children) <= 2 * math.log2(len(table)) + 2

    def test_missing_guard_raises(self):
        query, lattice, inputs = triangle_setup()
        branch = _Branch(tables={}, degree_guards={})
        x_el = lattice.index(frozenset("x"))
        with pytest.raises(CSMAError):
            _execute_cd(
                branch, CSMRule("CD", x_el, inputs["R"]), lattice,
                WorkCounter(),
            )


class TestRestarts:
    def _skewed_db(self, n=300, seed=0):
        rng = random.Random(seed)
        nodes = 40
        s = {(0, z) for z in range(n // 2)} | {
            (rng.randrange(nodes), rng.randrange(nodes))
            for _ in range(n // 2)
        }
        r = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
        t = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
        return Database(
            [
                Relation("R", ("x", "y"), r),
                Relation("S", ("y", "z"), s),
                Relation("T", ("z", "x"), t),
            ]
        )

    def test_zero_theta_restarts_and_stays_correct(self):
        query, lattice, inputs = triangle_setup()
        db = self._skewed_db()
        result = csma(query, db, lattice, inputs, theta_bits=0.0)
        from repro.engine.binary_join import binary_join_plan

        ref, _ = binary_join_plan(query, db)
        assert set(result.relation.tuples) == set(
            ref.project(result.relation.schema).tuples
        )
        assert result.stats.restarts >= 1
        assert result.stats.fallbacks == 0

    def test_loose_theta_no_restarts(self):
        query, lattice, inputs = triangle_setup()
        db = self._skewed_db()
        result = csma(query, db, lattice, inputs, theta_bits=8.0)
        assert result.stats.restarts == 0

    def test_fallback_cap_respected(self):
        """With max_restarts=0 a budget violation goes straight to the
        (sound) fallback; output must still be correct."""
        query, lattice, inputs = triangle_setup()
        db = self._skewed_db()
        result = csma(
            query, db, lattice, inputs, theta_bits=0.0, max_restarts=0
        )
        from repro.engine.binary_join import binary_join_plan

        ref, _ = binary_join_plan(query, db)
        assert set(result.relation.tuples) == set(
            ref.project(result.relation.schema).tuples
        )
        assert result.stats.fallbacks >= 1


class TestBranchMeasurement:
    def test_measured_constraints_shape(self):
        query, lattice, inputs = triangle_setup()
        table = Relation("R", ("x", "y"), [(1, 2), (1, 3)])
        branch = _Branch(
            tables={inputs["R"]: table},
            degree_guards={(lattice.index(frozenset("x")), inputs["R"]): table},
        )
        constraints = branch.measured_constraints(lattice)
        bounds = {(dc.x, dc.y): dc.bound for dc in constraints}
        assert bounds[(lattice.bottom, inputs["R"])] == pytest.approx(1.0)
        assert bounds[
            (lattice.index(frozenset("x")), inputs["R"])
        ] == pytest.approx(1.0)
