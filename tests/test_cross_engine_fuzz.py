"""Cross-engine fuzzing: every engine must agree on every workload.

Random queries with guarded simple-key fds (so every strategy applies)
plus the paper's fixed workloads, evaluated by every registered engine:
binary plans, generic join, LFTJ on both expansion substrates, the Chain
Algorithm, SMA (when a good proof exists), CSMA, and the closure trick.
The instance generators, engine registry and agreement assertions live in
``tests/differential.py``; this file just drives them.
"""

import pytest

from differential import (
    MANDATORY_ENGINES,
    assert_engines_agree,
    assert_leapfrog_substrate_equivalence,
    assert_lp_backend_equivalence,
    random_simple_key_workload,
)
from repro.lp.solver import HAVE_SCIPY

requires_scipy = pytest.mark.skipif(
    not HAVE_SCIPY, reason="backend-differential run needs the scipy extra"
)
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)


def test_mandatory_engine_registry():
    """The batched-kernel engines stay registered as mandatory: leapfrog on
    the positional kernel, its reference-substrate twin, the batched
    generic join, and CSMA on the exact-only LP stack, alongside the
    binary baseline and scipy-backed CSMA."""
    assert set(MANDATORY_ENGINES) >= {
        "binary", "csma", "generic", "lftj", "lftj-reference-expansion",
        "csma-exact-lp",
    }


@pytest.mark.parametrize("seed", range(12))
def test_random_simple_key_workloads(seed):
    query, db = random_simple_key_workload(seed)
    outputs = assert_engines_agree(query, db, context=f"on seed {seed}")
    assert len(outputs) >= 4
    assert_leapfrog_substrate_equivalence(query, db)


@requires_scipy
@pytest.mark.parametrize("seed", range(12))
def test_lp_backend_work_equivalence(seed):
    """The same workloads, evaluated with the LP layer pinned to each
    backend policy — canonical-vertex selection makes every policy
    bit-identical in work across chain, SMA *and* CSMA (the old CSMA
    degenerate-dual exemption is retired), with the CLLP optimum compared
    as exact Fractions."""
    query, db = random_simple_key_workload(seed)
    assert_lp_backend_equivalence(query, db)


@pytest.mark.parametrize(
    "maker",
    [
        lambda: grid_instance_example_5_5(36),
        lambda: skew_instance_example_5_8(50),
        lambda: fig4_instance(27),
        lambda: m3_modular_instance(6),
    ],
    ids=["grid", "skew", "fig4", "m3"],
)
def test_paper_workloads(maker):
    query, db = maker()
    assert_engines_agree(query, db)
    assert_leapfrog_substrate_equivalence(query, db)
