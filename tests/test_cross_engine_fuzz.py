"""Cross-engine fuzzing: every engine must agree on every workload.

Random queries with guarded simple-key fds (so every strategy applies)
plus the paper's fixed workloads, evaluated by every registered engine:
binary plans, generic join, LFTJ on both expansion substrates, the Chain
Algorithm, SMA (when a good proof exists), CSMA, and the closure trick.
The instance generators, engine registry and agreement assertions live in
``tests/differential.py``; this file just drives them.
"""

import pytest

from differential import (
    MANDATORY_ENGINES,
    assert_engines_agree,
    assert_leapfrog_substrate_equivalence,
    random_simple_key_workload,
)
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)


def test_mandatory_engine_registry():
    """The batched-kernel engines stay registered as mandatory: leapfrog on
    the positional kernel, its reference-substrate twin, and the batched
    generic join, alongside the binary baseline and CSMA."""
    assert set(MANDATORY_ENGINES) >= {
        "binary", "csma", "generic", "lftj", "lftj-reference-expansion"
    }


@pytest.mark.parametrize("seed", range(12))
def test_random_simple_key_workloads(seed):
    query, db = random_simple_key_workload(seed)
    outputs = assert_engines_agree(query, db, context=f"on seed {seed}")
    assert len(outputs) >= 4
    assert_leapfrog_substrate_equivalence(query, db)


@pytest.mark.parametrize(
    "maker",
    [
        lambda: grid_instance_example_5_5(36),
        lambda: skew_instance_example_5_8(50),
        lambda: fig4_instance(27),
        lambda: m3_modular_instance(6),
    ],
    ids=["grid", "skew", "fig4", "m3"],
)
def test_paper_workloads(maker):
    query, db = maker()
    assert_engines_agree(query, db)
    assert_leapfrog_substrate_equivalence(query, db)
