"""Cross-engine fuzzing: every engine must agree on every workload.

Random queries with guarded simple-key fds (so every strategy applies)
plus the paper's fixed workloads, evaluated by up to six independent
implementations: binary plans, generic join, LFTJ, the Chain Algorithm,
SMA (when a good proof exists), CSMA, and the closure trick.
"""

import random

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.simple_keys import all_guarded_simple_keys, closure_trick_join
from repro.core.sma import SMAError, submodularity_algorithm
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.query.query import Atom, Query


def random_simple_key_workload(seed: int):
    """A random 3-4 atom cyclic query where one relation gets a random
    simple key, realized as a functional instance."""
    rng = random.Random(seed)
    n_atoms = rng.choice([3, 4])
    variables = list("wxyz")[:n_atoms]
    atoms = [
        Atom(f"R{k}", (variables[k], variables[(k + 1) % n_atoms]))
        for k in range(n_atoms)
    ]
    key_atom = rng.randrange(n_atoms)
    key_var, dep_var = atoms[key_atom].attrs
    fds = FDSet([FD(key_var, dep_var)], variables)
    query = Query(atoms, fds)

    domain = rng.randint(4, 10)
    size = rng.randint(10, 60)
    relations = []
    for k, atom in enumerate(atoms):
        if k == key_atom:
            shift = rng.randrange(domain)
            tuples = {(v, (v * 3 + shift) % domain) for v in range(domain)}
        else:
            tuples = {
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(size)
            }
        relations.append(Relation(atom.name, atom.attrs, tuples))
    return query, Database(relations, fds=fds)


def all_engine_outputs(query, db):
    """Run every applicable engine; return {name: tuple-set} aligned to a
    canonical schema."""
    schema = tuple(sorted(query.variables))
    outputs = {}

    out, _ = binary_join_plan(query, db)
    outputs["binary"] = set(out.project(schema).tuples)

    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}

    value, chain, _ = best_chain_bound(lattice, inputs, logs)
    if chain is not None and value != float("inf"):
        out, _ = chain_algorithm(query, db, lattice, inputs, chain)
        outputs["chain"] = set(out.project(schema).tuples)

    try:
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
        outputs["sma"] = set(out.project(schema).tuples)
    except SMAError:
        pass

    result = csma(query, db, lattice, inputs)
    outputs["csma"] = set(result.relation.project(schema).tuples)

    if all_guarded_simple_keys(query):
        out, _ = closure_trick_join(query, db)
        outputs["closure-trick"] = set(out.project(schema).tuples)

    # Oblivious engines need every variable in an atom.
    in_atoms = set().union(*(a.varset for a in query.atoms))
    if in_atoms >= set(query.variables):
        out, _ = generic_join(query, db, fd_aware=True)
        outputs["generic"] = set(out.project(schema).tuples)
        out, _ = leapfrog_triejoin(query, db)
        outputs["lftj"] = set(out.project(schema).tuples)
    return outputs


@pytest.mark.parametrize("seed", range(12))
def test_random_simple_key_workloads(seed):
    query, db = random_simple_key_workload(seed)
    outputs = all_engine_outputs(query, db)
    assert len(outputs) >= 4
    reference = outputs.pop("binary")
    for name, result in outputs.items():
        assert result == reference, f"{name} disagrees on seed {seed}"


@pytest.mark.parametrize(
    "maker",
    [
        lambda: grid_instance_example_5_5(36),
        lambda: skew_instance_example_5_8(50),
        lambda: fig4_instance(27),
        lambda: m3_modular_instance(6),
    ],
    ids=["grid", "skew", "fig4", "m3"],
)
def test_paper_workloads(maker):
    query, db = maker()
    outputs = all_engine_outputs(query, db)
    reference = outputs.pop("binary")
    for name, result in outputs.items():
        assert result == reference, f"{name} disagrees"
