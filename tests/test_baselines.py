"""Baseline join algorithms (generic join, binary plans)."""

import itertools

import pytest

from repro.datagen.product import product_database, random_database
from repro.datagen.worstcase import skew_instance_example_5_8
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.relation import Relation
from repro.query.query import Atom, Query, triangle_query


class TestGenericJoin:
    def test_triangle_counts(self, triangle, triangle_db):
        out, stats = generic_join(triangle, triangle_db)
        assert len(out) == 6 * 5 * 4

    def test_empty_relation(self, triangle):
        db = Database(
            [
                Relation("R", ("x", "y"), []),
                Relation("S", ("y", "z"), [(1, 2)]),
                Relation("T", ("z", "x"), [(2, 3)]),
            ]
        )
        out, _ = generic_join(triangle, db)
        assert len(out) == 0

    def test_all_orders_agree(self, triangle, triangle_db):
        results = set()
        for order in itertools.permutations("xyz"):
            out, _ = generic_join(triangle, triangle_db, order=order)
            results.add(frozenset(out.project(("x", "y", "z")).tuples))
        assert len(results) == 1

    def test_invalid_order(self, triangle, triangle_db):
        with pytest.raises(ValueError):
            generic_join(triangle, triangle_db, order=("x", "y"))

    def test_matches_product_bound(self, triangle):
        db = product_database(triangle, {"x": 3, "y": 4, "z": 5})
        out, _ = generic_join(triangle, db)
        assert len(out) == 3 * 4 * 5

    def test_agrees_with_binary(self, triangle):
        db = random_database(triangle, 80, seed=7)
        a, _ = generic_join(triangle, db)
        b, _ = binary_join_plan(triangle, db)
        assert set(a.tuples) == set(b.project(a.schema).tuples)

    def test_dead_frontier_builds_no_indexes(self, triangle):
        """Index construction is deferred to first probe: a query whose
        frontier dies at depth 0 must not pay the O(N) index builds for
        the untouched atoms and depths (regression for the old eager
        per-(atom, depth) prologue)."""
        db = Database(
            [
                Relation("R", ("x", "y"), []),  # kills the depth-0 frontier
                Relation("S", ("y", "z"), [(i, i) for i in range(50)]),
                Relation("T", ("z", "x"), [(i, i) for i in range(50)]),
            ]
        )
        out, _ = generic_join(triangle, db)
        assert len(out) == 0
        # Depth 0 (x) probes only the R/T choose indexes on the empty
        # prefix; S — and every deeper or verify index — is never touched.
        # The engine probes the active-plane relations (the encoded twins
        # when dictionary encoding is on), so that is where the laziness
        # is observable.
        assert db.runtime("S")._indexes == {}
        assert set(db.runtime("R")._indexes) == {()}
        assert set(db.runtime("T")._indexes) == {()}

    def test_fd_aware_binds_determined_variable(self):
        # y = f(x): fd-aware never enumerates y.
        from repro.fds.udf import UDF

        query = Query(
            [Atom("R", ("x",)), Atom("S", ("x", "y"))],
        )
        s_tuples = [(i, i + 1) for i in range(10)]
        db = Database(
            [
                Relation("R", ("x",), [(i,) for i in range(10)]),
                Relation("S", ("x", "y"), s_tuples),
            ],
            udfs=[UDF("f", ("x",), "y", lambda x: x + 1)],
        )
        out, stats = generic_join(query, db, order=("x", "y"), fd_aware=True)
        assert len(out) == 10
        # Depth 1 work is one expansion per x, not a scan of S.
        assert stats.per_depth[1] == 10

    def test_oblivious_rejects_atomless_variable(self):
        from repro.fds.fd import FD, FDSet

        query = Query(
            [Atom("R", ("x",)), Atom("S", ("y",))],
            FDSet([FD("xy", "z")], "xyz"),
        )
        db = Database(
            [Relation("R", ("x",), [(1,)]), Relation("S", ("y",), [(2,)])]
        )
        with pytest.raises(ValueError):
            generic_join(query, db)

    def test_skew_instance_quadratic_blowup(self):
        """Ex. 5.8: the y,z,x,u order touches Θ(N²/4) bindings even
        fd-aware — the motivating lower bound for the Chain Algorithm."""
        query, db = skew_instance_example_5_8(64)
        _, stats = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        n = 64
        assert stats.tuples_touched > (n // 2) ** 2  # Θ(N²/4) barrier


class TestBinaryJoin:
    def test_triangle(self, triangle, triangle_db):
        out, stats = binary_join_plan(triangle, triangle_db)
        assert len(out) == 120
        assert stats.intermediate_peak >= 120

    def test_intermediate_blowup_recorded(self):
        query, db = skew_instance_example_5_8(64)
        out, stats = binary_join_plan(query, db, order=["R", "S", "T"])
        # The R ⋈ S ⋈ T intermediate is quadratic (Sec. 1.1).
        assert stats.intermediate_peak > (64 // 2) ** 2

    def test_explicit_order(self, triangle, triangle_db):
        out, _ = binary_join_plan(triangle, triangle_db, order=["T", "S", "R"])
        assert len(out) == 120

    def test_udf_filter_applied(self):
        query, db = skew_instance_example_5_8(32)
        out, _ = binary_join_plan(query, db, order=["R", "S", "T"])
        # Every output tuple satisfies u = f(x, z) = x and x = g(y, u) = u.
        pos = {a: i for i, a in enumerate(out.schema)}
        for t in out.tuples:
            assert t[pos["u"]] == t[pos["x"]]
