"""Pinning tests for the shared symbolic-replay core.

``Database._compile_steps`` drives both plan variants (per-tuple
``expansion_plan`` and whole-relation ``relation_plan``).  These tests pin
the fd-application order — first applicable fd in FDSet order wins, every
iteration — and the three rules that intentionally differ between the
variants, so a refactor of the shared core cannot silently diverge either
one from its naive reference formulation.
"""

import pytest

from repro.engine.database import Database, ExpansionError
from repro.engine.expansion_plan import GUARD, UDF as UDF_STEP
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF


def _chain_db():
    """a→b guarded by G1, b→c guarded by G2, fds registered 'backwards'."""
    g1 = Relation("G1", ("a", "b"), [(1, 10), (2, 20)])
    g2 = Relation("G2", ("b", "c"), [(10, 100), (20, 200)])
    return Database([g1, g2], fds=FDSet([FD("b", "c"), FD("a", "b")]))


def test_fd_application_order_pinned_for_both_variants():
    """Applicability, not FDSet registration order, sequences the steps:
    from {a} only a→b applies, then b→c — for both plan variants."""
    db = _chain_db()
    tuple_plan = db.expansion_plan(("a",))
    relation_plan = db.relation_plan(("a",))
    for plan in (tuple_plan, relation_plan):
        assert plan.out_schema == ("a", "b", "c")
        assert [tag for tag, _, _ in plan.steps] == [GUARD, GUARD]
        # First step keys on position 0 (a), second on position 1 (b).
        assert plan.steps[0][1] == (0,)
        assert plan.steps[1][1] == (1,)
    assert tuple_plan.execute((1,)) == (1, 10, 100)
    assert relation_plan.execute_all([(1,)]) == [(1, 10, 100)]


def test_fdset_order_breaks_ties_identically():
    """With two fds applicable at once, the first in FDSet order is applied
    first — pinned for both variants via the output layout."""
    g1 = Relation("G1", ("a", "b"), [(1, 10)])
    g2 = Relation("G2", ("a", "c"), [(1, 30)])
    db = Database([g1, g2], fds=FDSet([FD("a", "c"), FD("a", "b")]))
    assert db.expansion_plan(("a",)).out_schema == ("a", "c", "b")
    assert db.relation_plan(("a",)).out_schema == ("a", "c", "b")


def test_udf_resolution_scope_differs_by_design():
    """The pinned divergence between the variants, mirroring their naive
    references: within one fd whose rhs needs chained UDFs (d = g(c),
    c = f(a)), the per-tuple variant resolves every missing attribute
    against the pre-fd bound set (as ``reference_expand_tuple`` does) and
    therefore fails, while the whole-relation variant grows the bound set
    per attribute (as ``reference_expand_relation`` does) and succeeds."""
    db = Database(
        [Relation("R", ("a",), [(1,), (2,)])],
        fds=FDSet([FD("a", "cd")], "acd"),
        udfs=[
            UDF("f", ("a",), "c", lambda a: a + 1),
            UDF("g", ("c",), "d", lambda c: c * 10),
        ],
    )
    plan = db.relation_plan(("a",))
    assert plan.out_schema == ("a", "c", "d")
    assert [tag for tag, _, _ in plan.steps] == [UDF_STEP, UDF_STEP]
    assert plan.execute_all([(1,)]) == [(1, 2, 20)]
    with pytest.raises(ExpansionError):
        db.expansion_plan(("a",))


def test_partial_target_stops_early_only_for_tuple_plans():
    """Tuple plans honor a partial target ((rhs - bound) & goal); relation
    plans always chase the full closure."""
    db = _chain_db()
    partial = db.expansion_plan(("a",), target=frozenset(("a", "b")))
    assert partial.out_schema == ("a", "b")
    assert [tag for tag, _, _ in partial.steps] == [GUARD]
    assert db.relation_plan(("a",)).out_schema == ("a", "b", "c")
