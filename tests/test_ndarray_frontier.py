"""The array-of-int64 frontier backend: blocks, masks, and both bugfixes.

Satellite coverage for the ndarray-frontier PR:

* **Block vocabulary** — row/column/block round trips, the lexicographic
  void view (multi-attribute keys sort and compare like their tuples),
  and ``block_isin`` membership against Python-set ground truth.
* **Backend equivalence** — every engine's ``tuples_touched`` is
  bit-identical with the block backend forced on vs off
  (:func:`differential.assert_ndarray_backend_equivalence`), and the
  aligned ``execute_batch`` outputs agree across all four backends
  (row-loop, columnwise, numpy-dedup, ndarray) through
  ``assert_batch_backend_equivalence`` on the shared corpus.
* **Mid-run interning** — codes interned *after* a plan compiled its
  ``GUARD_DENSE`` table (or sparse lookup) must dangle on every backend:
  no ``IndexError``, no silent join, reference-identical counts.
* **Cross-type values** — ``==``-equal values of different types share a
  code and decode to the pinned first-seen representative; engines agree
  across planes on the mixed-type corpus.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from differential import (
    ENGINES,
    MANDATORY_ENGINES,
    assert_engines_agree,
    assert_ndarray_backend_equivalence,
    assert_plane_equivalence,
    decoded_plane_db,
    mixed_type_midrun_instance,
    ndarray_forced,
    random_simple_key_workload,
)
from repro.engine import frontier
from repro.engine.database import Database
from repro.engine.expansion_plan import GUARD, GUARD_DENSE
from repro.engine.generic_join import generic_join
from repro.engine.ops import WorkCounter
from repro.engine.reference import reference_expand_tuple
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF


# ----------------------------------------------------------------------
# Block vocabulary
# ----------------------------------------------------------------------

def test_block_round_trip_and_mask_alignment():
    rows = [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
    block = frontier.rows_to_block(rows, 3)
    assert block.shape == (3, 3)
    assert frontier.block_to_rows(block, None) == rows
    mask = np.array([True, False, True])
    assert frontier.block_to_rows(block, mask) == [rows[0], None, rows[2]]
    assert frontier.block_rows(block) == rows
    # Non-rectangular / non-int frontiers refuse (callers fall back).
    assert frontier.rows_to_block([(1, 2), (3,)], 2) is None
    assert frontier.rows_to_block([("a", 1)], 2) is None
    assert frontier.rows_to_block(rows, 2) is None


def test_void_view_orders_like_key_tuples():
    rng = random.Random(7)
    keys = [
        tuple(rng.randrange(50) for _ in range(3)) for _ in range(200)
    ]
    block = frontier.rows_to_block(keys, 3)
    voids = frontier.void_view(block)
    by_void = [keys[i] for i in np.argsort(voids, kind="stable")]
    assert by_void == sorted(keys)


@pytest.mark.parametrize("width", [1, 2, 4])
def test_block_isin_matches_set_membership(width):
    rng = random.Random(width)
    stored = [tuple(rng.randrange(9) for _ in range(width)) for _ in range(40)]
    probes = [tuple(rng.randrange(12) for _ in range(width)) for _ in range(120)]
    struct, _ = frontier.sorted_key_block(frontier.rows_to_block(stored, width))
    hits = frontier.block_isin(
        frontier.rows_to_block(probes, width), tuple(range(width)), struct
    )
    truth = set(stored)
    assert [bool(h) for h in hits] == [p in truth for p in probes]


@pytest.mark.parametrize("width", [1, 2, 3])
def test_key_join_matches_index_join(width):
    """``key_join`` emits exactly the per-tuple probe join's rows, in the
    same order, with the same match count — including probe components
    the build side has never seen (mid-run codes pack to a miss)."""
    rng = random.Random(width + 40)
    guard = [tuple(rng.randrange(7) for _ in range(width)) for _ in range(60)]
    probes = [
        tuple(rng.randrange(9) for _ in range(width)) for _ in range(80)
    ] + [(10 ** 9,) * width]  # far outside every radix
    index: dict = {}
    for i, key in enumerate(guard):
        index.setdefault(key, []).append(i)
    expected = []
    touched = 0
    for i, probe in enumerate(probes):
        matches = index.get(probe, [])
        touched += len(matches)
        expected.extend((i, j) for j in matches)
    struct, order = frontier.sorted_key_block(
        frontier.rows_to_block(guard, width)
    )
    reps, gather, got_touched = frontier.key_join(
        struct, frontier.rows_to_block(probes, width), tuple(range(width))
    )
    sorted_to_original = order.tolist()
    got = [
        (int(r), sorted_to_original[int(g)]) for r, g in zip(reps, gather)
    ]
    assert got == expected
    assert got_touched == touched


def test_engaged_respects_mode_and_threshold():
    from repro.engine import fused, shard

    saved_mode, saved_min = frontier.NDARRAY_MODE, frontier.NDARRAY_MIN_ROWS
    saved_shard = shard.SHARD_MODE
    saved_fuse = fused.FUSE_MODE
    try:
        # Pin sharding and fusion to non-forcing modes: REPRO_SHARD=on
        # and REPRO_FUSE=on deliberately force the block backend on
        # (shards and pipelines only exist on blocks), which would defeat
        # the auto-threshold assertions below.
        shard.SHARD_MODE = "off"
        fused.FUSE_MODE = "auto"
        frontier.NDARRAY_MODE, frontier.NDARRAY_MIN_ROWS = "auto", 100
        assert not frontier.ndarray_engaged(99)
        assert frontier.ndarray_engaged(100)
        frontier.NDARRAY_MODE = "off"
        assert not frontier.ndarray_engaged(10 ** 6)
        frontier.NDARRAY_MODE = "on"
        assert frontier.ndarray_engaged(1)
        assert not frontier.ndarray_engaged(0)
        # The shard coupling itself: forcing shards forces blocks, except
        # when blocks are explicitly off (which wins).
        frontier.NDARRAY_MODE, shard.SHARD_MODE = "auto", "on"
        assert frontier.ndarray_engaged(1)
        assert frontier.ndarray_forced_on()
        frontier.NDARRAY_MODE = "off"
        assert not frontier.ndarray_engaged(10 ** 6)
        assert not frontier.ndarray_forced_on()
        # The fuse coupling mirrors it: REPRO_FUSE=on forces blocks,
        # explicit blocks-off still wins.
        shard.SHARD_MODE = "off"
        frontier.NDARRAY_MODE, fused.FUSE_MODE = "auto", "on"
        assert frontier.ndarray_engaged(1)
        assert frontier.ndarray_forced_on()
        frontier.NDARRAY_MODE = "off"
        assert not frontier.ndarray_engaged(10 ** 6)
        assert not frontier.ndarray_forced_on()
    finally:
        frontier.NDARRAY_MODE, frontier.NDARRAY_MIN_ROWS = saved_mode, saved_min
        shard.SHARD_MODE = saved_shard
        fused.FUSE_MODE = saved_fuse


# ----------------------------------------------------------------------
# Mid-run interning: stale compile-time tables must treat fresh codes
# as dangling on every backend
# ----------------------------------------------------------------------

def _dense_guard_db() -> Database:
    fds = FDSet([FD("y", "z")], ["y", "z"])
    guard = Relation("T", ("y", "z"), [(i, i * 10) for i in range(8)])
    return Database([guard], fds=fds)


def _all_backend_runs(plan, rows):
    """``execute_batch`` under every backend, plus the scalar executor."""
    import repro.engine.expansion_plan as ep

    outputs = {}
    saved = (ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS_ENCODED)
    try:
        with ndarray_forced("off"):
            ep.COLUMN_MIN_ROWS = 10 ** 9
            outputs["row-loop"] = _counted(plan, rows)
            ep.COLUMN_MIN_ROWS = 1
            ep.NUMPY_MIN_ROWS_ENCODED = 10 ** 9
            outputs["columnwise"] = _counted(plan, rows)
            ep.NUMPY_MIN_ROWS_ENCODED = 1
            outputs["numpy-dedup"] = _counted(plan, rows)
        with ndarray_forced("on"):
            outputs["ndarray"] = _counted(plan, rows)
        counter = WorkCounter()
        outputs["scalar"] = (
            counter, [plan.execute(row, counter) for row in rows]
        )
    finally:
        ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS_ENCODED = saved
    return outputs


def _counted(plan, rows):
    counter = WorkCounter()
    return counter, plan.execute_batch(list(rows), counter)


def test_midrun_interned_code_dangles_on_every_backend():
    """A code interned after the ``GUARD_DENSE`` table compiled is ≥ the
    table length; every backend must treat it as dangling — raising
    ``IndexError`` or silently joining onto a wrong image both fail."""
    db = _dense_guard_db()
    plan = db.expansion_plan(("y",), encoded=True)
    assert plan.steps[0][0] == GUARD_DENSE
    table_size = len(plan.steps[0][2])
    y_dict = db.codec.dictionary("y")
    fresh = [y_dict.encode(f"fresh-{i}") for i in range(5)]
    assert min(fresh) >= table_size
    stored = y_dict.encode(3)
    rows = [(code,) for code in fresh] + [(stored,)]
    expected = [None] * len(fresh) + [(stored, db.codec.dictionary("z").encode(30))]

    ref_counter = WorkCounter()
    for code in fresh:
        assert reference_expand_tuple(
            db, {"y": y_dict.decode(code)}, counter=ref_counter
        ) is None
    assert reference_expand_tuple(
        db, {"y": 3}, counter=ref_counter
    ) == {"y": 3, "z": 30}

    for backend, (counter, out) in _all_backend_runs(plan, rows).items():
        assert out == expected, f"{backend} mishandled a mid-run code"
        assert counter.tuples_touched == ref_counter.tuples_touched, backend


def test_midrun_interned_code_misses_sparse_guard_on_every_backend():
    """Same contract for multi-attribute (sparse, sort/searchsorted)
    guard steps: fresh key codes are misses, never matches."""
    fds = FDSet([FD(frozenset({"a", "b"}), "c")], ["a", "b", "c"])
    guard = Relation(
        "G", ("a", "b", "c"), [(i, i % 3, i + 100) for i in range(12)]
    )
    db = Database([guard], fds=fds)
    plan = db.expansion_plan(("a", "b"), encoded=True)
    assert plan.steps[0][0] == GUARD
    a_dict, b_dict = db.codec.dictionary("a"), db.codec.dictionary("b")
    fresh_a = a_dict.encode("fresh-a")
    fresh_b = b_dict.encode("fresh-b")
    rows = [
        (fresh_a, b_dict.encode(1)),
        (a_dict.encode(4), fresh_b),
        (fresh_a, fresh_b),
        (a_dict.encode(4), b_dict.encode(1)),
    ]
    expected = [None, None, None,
                (a_dict.encode(4), b_dict.encode(1),
                 db.codec.dictionary("c").encode(104))]
    for backend, (counter, out) in _all_backend_runs(plan, rows).items():
        assert out == expected, f"{backend} mishandled a fresh sparse key"
        assert counter.tuples_touched == len(rows), backend


def test_fd_inconsistent_dense_entries_dangle_on_every_backend():
    """An fd-violating guard key maps to INCONSISTENT in the compiled
    table; all backends must dangle it (not join the first image)."""
    fds = FDSet([FD("y", "z")], ["y", "z"])
    guard = Relation(
        "T", ("y", "z"), [(0, 1), (0, 2), (1, 5)]  # y=0 violates y→z
    )
    db = Database([guard], fds=fds)
    plan = db.expansion_plan(("y",), encoded=True)
    codec = db.codec
    rows = [(codec.dictionary("y").encode(0),),
            (codec.dictionary("y").encode(1),)]
    expected = [None, (codec.dictionary("y").encode(1),
                       codec.dictionary("z").encode(5))]
    for backend, (counter, out) in _all_backend_runs(plan, rows).items():
        assert out == expected, f"{backend} joined an inconsistent key"


# ----------------------------------------------------------------------
# Cross-type ==-equal values: the pinned first-seen semantics
# ----------------------------------------------------------------------

def test_cross_type_codes_collapse_and_decode_first_seen():
    db = Database([
        Relation("R", ("v",), [(1.0,)]),
        Relation("S", ("v",), [(True,)]),
        Relation("U", ("v",), [(1,)]),
    ])
    d = db.codec.dictionary("v")
    code = d.encode(1.0)
    assert d.encode(True) == code and d.encode(1) == code
    # First-seen representative: R was added first, so 1.0 it is.
    assert type(d.decode(code)) is float and d.decode(code) == 1


@pytest.mark.parametrize("seed", range(6))
def test_mixed_type_instances_agree_across_planes(seed):
    query, db = mixed_type_midrun_instance(seed)
    assert_engines_agree(query, db, context=f"mixed seed={seed}")
    assert_plane_equivalence(query, db)


def test_mixed_type_terminal_decode_is_the_interned_representative():
    """Encoded-plane terminal outputs surface the codec's first-seen
    representative — deterministic, and ``==``-equal to the decoded
    plane's output (the documented semantics, not canonicalization)."""
    query, db = mixed_type_midrun_instance(3)
    schema = tuple(sorted(query.variables))
    encoded_out = ENGINES["csma"](query, db, schema)
    decoded_out = ENGINES["csma"](query, decoded_plane_db(db), schema)
    assert encoded_out == decoded_out
    dicts = {a: db.codec.dictionary(a) for a in schema}
    for row in encoded_out:
        for attr, value in zip(schema, row):
            rep = dicts[attr].decode(dicts[attr].encode(value))
            assert value is rep, (
                f"{attr}={value!r} is not the interned representative"
            )


# ----------------------------------------------------------------------
# Backend equivalence across whole engines
# ----------------------------------------------------------------------

def test_ndarray_variants_registered_and_mandatory():
    for name in ("chain", "sma", "csma", "generic", "lftj"):
        assert f"{name}-ndarray-frontier" in ENGINES
    for name in ("csma", "generic", "lftj"):
        assert f"{name}-ndarray-frontier" in MANDATORY_ENGINES


@pytest.mark.parametrize("seed", range(6))
def test_ndarray_backend_work_equivalence(seed):
    query, db = random_simple_key_workload(seed)
    assert_ndarray_backend_equivalence(query, db)


@pytest.mark.parametrize("seed", range(3))
def test_ndarray_backend_work_equivalence_mixed(seed):
    query, db = mixed_type_midrun_instance(seed)
    assert_ndarray_backend_equivalence(query, db)


@pytest.mark.parametrize("instance", ["cyclic", "fdchain"])
def test_generic_join_block_frontier_matches_list_path(instance):
    """The level-wise BFS frontier as an int64 block: same results and
    stats as the tuple path, across frontiers that span determined and
    choose depths (single determined depths and multi-step chains)."""
    if instance == "cyclic":
        query, db = random_simple_key_workload(11)
        order = None
    else:
        from repro.datagen.large import fdchain_order, large_fdchain_workload

        query, db = large_fdchain_workload(600, k=4)
        order = fdchain_order(4)
    with ndarray_forced("on"):
        out_on, stats_on = generic_join(query, db, order=order, fd_aware=True)
    with ndarray_forced("off"):
        out_off, stats_off = generic_join(query, db, order=order, fd_aware=True)
    assert set(out_on.tuples) == set(out_off.tuples)
    assert stats_on.tuples_touched == stats_off.tuples_touched
    assert stats_on.per_depth == stats_off.per_depth


# ----------------------------------------------------------------------
# The expand_rows_relation seam
# ----------------------------------------------------------------------

def test_expand_rows_relation_seeds_columns_on_block_path():
    fds = FDSet([FD("y", "z")], ["x", "y", "z"])
    guard = Relation("T", ("y", "z"), [(i, i * 3) for i in range(64)])
    db = Database([guard], fds=fds)
    codec = db.codec
    x_dict, y_dict = codec.dictionary("x"), codec.dictionary("y")
    rows = [
        (x_dict.encode(f"x{i}"), y_dict.encode(i % 64)) for i in range(200)
    ]
    with ndarray_forced("on"):
        rel_block = db.expand_rows_relation(
            "T(join)", rows, ("x", "y"), frozenset("xyz"), ("x", "y", "z"),
            encoded=True,
        )
    with ndarray_forced("off"):
        rel_rows = db.expand_rows_relation(
            "T(join)", rows, ("x", "y"), frozenset("xyz"), ("x", "y", "z"),
            encoded=True,
        )
    assert rel_block.tuples == rel_rows.tuples
    assert rel_block.cached_columns() is not None
    assert rel_block.columns_all_int() == (True, True, True)
    assert rel_block.columns() == tuple(
        tuple(row[j] for row in rel_block.tuples) for j in range(3)
    )


def test_dangling_rows_probe_later_guards_safely():
    """A row dangled by an early guard skips its UDF write, yet later
    guard steps still probe its cells vectorized — those cells must hold
    safe codes (zeros), not heap garbage that could fancy-index a table
    out of bounds (guard → UDF → guard is the crash shape)."""
    fds = FDSet(
        [FD("x", "a"), FD("a", "b"), FD("b", "c")], ["x", "a", "b", "c"]
    )
    g1 = Relation("G1", ("x", "a"), [(i, i) for i in range(16)])
    db = Database(
        [g1, Relation("G3", ("b", "c"), [(i, i + 1) for i in range(64)])],
        fds=fds,
        udfs=[UDF("u", ("a",), "b", lambda a: a * 2)],
    )
    plan = db.expansion_plan(("x",), encoded=True)
    assert [step[0] for step in plan.steps] == [GUARD_DENSE, 1, GUARD_DENSE]
    x_dict = db.codec.dictionary("x")
    rows = [(x_dict.encode(3),), (x_dict.encode("dangling"),),
            (x_dict.encode(5),)]
    for backend, (counter, out) in _all_backend_runs(plan, rows).items():
        assert out[1] is None and out[0] is not None and out[2] is not None, (
            backend
        )


def test_decoded_lftj_joins_decimal_against_int():
    """``==``-equal numerics of *any* stdlib numeric type must meet in
    the decoded trie order — Decimal('1') joins 1 like 1.0 does."""
    from decimal import Decimal

    from repro.engine.leapfrog import leapfrog_triejoin
    from repro.query.query import Atom, Query

    query = Query([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            Relation("R", ("x", "y"), [(0, Decimal(1)), (1, 2)]),
            Relation("S", ("y", "z"), [(1, 7), (Decimal(2), 8)]),
        ],
        encode=False,
    )
    out, _ = leapfrog_triejoin(query, db)
    assert {tuple(map(int, t)) for t in out.tuples} == {(0, 1, 7), (1, 2, 8)}


def test_decoded_lftj_joins_cross_type_infinities():
    """``float('inf') == Decimal('Infinity')`` (and they share a hash),
    so the two must meet in the decoded trie order like any ``==``-equal
    pair."""
    from decimal import Decimal

    from repro.engine.leapfrog import leapfrog_triejoin
    from repro.query.query import Atom, Query

    query = Query([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            Relation("R", ("x", "y"), [(1, float("inf"))]),
            Relation("S", ("y", "z"), [(Decimal("Infinity"), 2)]),
        ],
        encode=False,
    )
    out, _ = leapfrog_triejoin(query, db)
    assert len(out.tuples) == 1 and out.tuples[0][0] == 1


def test_from_columns_refuses_desynced_store_on_dedup():
    """Without ``distinct=True`` the constructor may dedup; the pre-dedup
    column store must then NOT be installed (lazy transpose instead)."""
    rel = Relation.from_columns("X", ("a", "b"), [(1, 1, 2), (5, 5, 6)])
    assert rel.tuples == ((1, 5), (2, 6))
    assert rel.columns() == ((1, 2), (5, 6))
    distinct = Relation.from_columns(
        "Y", ("a", "b"), [(1, 2), (5, 6)], distinct=True
    )
    assert distinct.cached_columns() == ((1, 2), (5, 6))


def test_udf_steps_decode_only_masked_in_rows():
    """On the block backend a UDF runs once per *alive* row: rows dangled
    by an earlier guard step never evaluate the opaque predicate."""
    calls = []

    def probe(v):
        calls.append(v)
        return v

    fds = FDSet([FD("a", "b"), FD(frozenset({"a", "b"}), "c")], ["a", "b", "c"])
    guard = Relation("G", ("a", "b"), [(i, i + 10) for i in range(4)])
    db = Database(
        [guard], fds=fds, udfs=[UDF("p", ("b",), "c", probe)]
    )
    plan = db.expansion_plan(("a",), encoded=True)
    tags = [step[0] for step in plan.steps]
    assert tags[0] in (GUARD, GUARD_DENSE) and tags[-1] == 1  # UDF last
    a_dict = db.codec.dictionary("a")
    fresh = a_dict.encode("dangling")
    rows = [(a_dict.encode(2),), (fresh,), (a_dict.encode(3),)]
    with ndarray_forced("on"):
        counter = WorkCounter()
        out = plan.execute_batch(rows, counter)
    assert out[1] is None and out[0] is not None and out[2] is not None
    assert calls == [12, 13]  # the dangled row never reached the UDF
    # Charges: 3 rows at the guard step + 2 alive rows at the UDF step.
    assert counter.tuples_touched == 5
