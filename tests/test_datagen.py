"""Instance generators (repro.datagen)."""

import math

import pytest

from repro.datagen.from_lattice import (
    BOTTOM,
    database_from_world,
    join_irreducible_names,
    query_from_lattice,
    worst_case_database,
)
from repro.datagen.product import product_database, random_database
from repro.datagen.worstcase import (
    colored_degree_triangle,
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import (
    fig1_lattice,
    fig4_lattice,
    fig9_lattice,
    lattice_from_query,
    m3,
)
from repro.query.query import triangle_query


class TestProductRandom:
    def test_product_sizes(self):
        query = triangle_query()
        db = product_database(query, {"x": 2, "y": 3, "z": 5})
        assert len(db["R"]) == 6
        assert len(db["S"]) == 15
        assert len(db["T"]) == 10

    def test_product_output_is_cross_product(self):
        query = triangle_query()
        db = product_database(query, {"x": 2, "y": 3, "z": 5})
        out, _ = generic_join(query, db)
        assert len(out) == 30

    def test_random_deterministic(self):
        query = triangle_query()
        a = random_database(query, 50, seed=9)
        b = random_database(query, 50, seed=9)
        assert set(a["R"].tuples) == set(b["R"].tuples)


class TestWorstcase:
    def test_skew_shapes(self):
        query, db = skew_instance_example_5_8(100)
        assert len(db["R"]) == 99  # {(1,i)} ∪ {(i,1)} with (1,1) shared
        out, _ = binary_join_plan(query, db)
        # Output is Θ(N): the x=1 and z=1 stars joined at (1,1).
        assert len(out) >= 50

    def test_grid_output_n_three_halves(self):
        query, db = grid_instance_example_5_5(49)
        out, _ = binary_join_plan(query, db)
        assert len(out) == 7 ** 3

    def test_m3_modular_instance(self):
        query, db = m3_modular_instance(10)
        out, _ = binary_join_plan(query, db)
        assert len(out) == 100  # N² (Ex. 5.12)
        # Every tuple satisfies x + y + z = 0 mod N.
        pos = {a: i for i, a in enumerate(out.schema)}
        for t in out.tuples:
            assert (t[pos["x"]] + t[pos["y"]] + t[pos["z"]]) % 10 == 0

    def test_fig4_instance_sizes(self):
        query, db = fig4_instance(64)
        assert all(size == 64 for size in db.sizes().values())
        out, _ = binary_join_plan(query, db)
        assert len(out) == 4 ** 4  # m^4 = N^{4/3}

    def test_colored_triangle_degrees(self):
        query, db = colored_degree_triangle(200, d1=3, d2=4)
        assert db["R"].max_degree(("x",)) <= 3
        assert db["R"].max_degree(("y",)) <= 4
        assert len(db["C1"]) == 3
        assert len(db["C2"]) == 4
        # The fds of query (2) hold: x,c1 -> y.
        assert db.observed_degree_bound("R", ("x", "c1"), ("y",)) <= 1


class TestFromLattice:
    def test_names(self):
        lat, _ = fig9_lattice()
        names = join_irreducible_names(lat)
        assert set(names) == {"d", "e", "f", "m", "n", "o", "p", "s", "t"}

    def test_query_lattice_roundtrip_fig9(self):
        lat, inputs = fig9_lattice()
        query, _ = query_from_lattice(lat, inputs)
        lat2, _ = lattice_from_query(query)
        assert len(lat2) == len(lat)

    def test_query_lattice_roundtrip_fig1(self):
        lat, inputs = fig1_lattice()
        query, _ = query_from_lattice(lat, inputs)
        lat2, _ = lattice_from_query(query)
        assert len(lat2) == len(lat)

    def test_query_lattice_roundtrip_m3(self):
        lat = m3()
        inputs = {"R": lat.index("x"), "S": lat.index("y"), "T": lat.index("z")}
        query, _ = query_from_lattice(lat, inputs)
        lat2, _ = lattice_from_query(query)
        assert len(lat2) == len(lat)

    def test_worst_case_database_fig9(self):
        lat, inputs = fig9_lattice()
        query, db, h = worst_case_database(lat, inputs, scale=2)
        # h is the doubled optimum: h(1̂) = 3, inputs at 2.
        assert h.values[h.lattice.top] == 3
        assert all(size == 4 for size in db.sizes().values())
        out, _ = binary_join_plan(query, db)
        assert len(out) == 8  # scale^{h(1̂)}

    def test_worst_case_database_fig4(self):
        lat, inputs = fig4_lattice()
        query, db, h = worst_case_database(lat, inputs, scale=2)
        out, _ = binary_join_plan(query, db)
        assert len(out) == 2 ** int(h.values[h.lattice.top])

    def test_worst_case_m3_rejected(self):
        # The optimal M3 polymatroid is not normal: no quasi-product
        # worst case exists (Sec. 4.3).
        lat = m3()
        inputs = {"R": lat.index("x"), "S": lat.index("y"), "T": lat.index("z")}
        with pytest.raises(ValueError):
            worst_case_database(lat, inputs, scale=2)

    def test_database_from_world_udf_miss_is_bottom(self):
        lat, inputs = fig1_lattice()
        from repro.datagen.from_lattice import query_from_lattice

        query, _ = query_from_lattice(lat, inputs)
        world_vars = tuple(sorted(join_irreducible_names(lat)))
        world = [(0, 0, 0, 0), (1, 1, 1, 1)]
        db = database_from_world(query, world_vars, world)
        udf = next(iter(db.udfs))
        missing = udf(*([99] * len(udf.inputs)))
        assert missing == BOTTOM
