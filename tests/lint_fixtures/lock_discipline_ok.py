"""Conforms to lock-discipline: every declared-field write is locked."""

import threading


class Counter:
    _locked_fields = ("total", "by_key")

    def __init__(self):
        self.total = 0
        self.by_key = {}
        self._lock = threading.Lock()

    def bump(self, key):
        with self._lock:
            self.total += 1
            self.by_key[key] = self.by_key.get(key, 0) + 1

    def snapshot(self):
        # Reads of locked fields are not the rule's business.
        return self.total, dict(self.by_key)
