"""Conforms to error-taxonomy (scanned as engine code)."""

from repro.errors import classify


class GoodError(RuntimeError):
    """A domain root pinning specific stdlib catch semantics."""


def classify_broad(g):
    try:
        return g()
    except Exception as exc:
        return classify(exc, backend="fixture")


def reraise_broad(g):
    try:
        return g()
    except Exception:
        raise


def typed_raises():
    raise GoodError("specific")
