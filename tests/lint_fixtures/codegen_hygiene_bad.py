"""Violates codegen-hygiene: exec/eval outside the codegen whitelist."""


def build(src):
    exec(src)
    return eval("1 + 1")
