"""Conforms to knob-discipline: reads through the registry, writes allowed."""

import os

from repro import config


def registry_read():
    return config.get("REPRO_SHARD")


def registry_probe():
    return config.is_set("REPRO_FUSE")


def env_write(value):
    # Writes (tests setting knobs) are fine; only reads are disciplined.
    os.environ["REPRO_ENCODE"] = value
    os.environ.pop("REPRO_ENCODE", None)
