"""Violates context-propagation: bare submit / Thread target."""

import threading


def fan_out(pool, fn):
    pool.submit(fn, 1)


def spawn(fn):
    t = threading.Thread(target=fn, args=(1,))
    t.start()
    return t
