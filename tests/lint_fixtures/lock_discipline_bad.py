"""Violates lock-discipline: declared field written outside the lock."""

import threading


class Counter:
    _locked_fields = ("total", "by_key")

    def __init__(self):
        self.total = 0  # __init__ is exempt: no concurrent access yet
        self.by_key = {}
        self._lock = threading.Lock()

    def bump(self, key):
        self.total += 1
        self.by_key[key] = self.by_key.get(key, 0) + 1
