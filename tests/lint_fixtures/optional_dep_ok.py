"""Conforms to optional-dep-guard: guarded seam or lazy function import."""

try:
    import scipy.optimize as _opt
except ImportError:  # the no-scipy leg
    _opt = None


def jit():
    from numba import njit

    return njit
