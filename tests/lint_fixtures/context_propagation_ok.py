"""Conforms to context-propagation: callables route through ctx.run."""

import threading
from contextvars import copy_context


def fan_out(pool, fn):
    ctx = copy_context()
    pool.submit(ctx.run, fn, 1)


def spawn(fn):
    t = threading.Thread(target=copy_context().run, args=(fn, 1))
    t.start()
    return t
