"""Violates error-taxonomy (scanned as engine code): bare except, broad
swallow, message string-matching, a taxonomy-less exception class."""


class LocalError(Exception):
    pass


def swallow_everything(g):
    try:
        return g()
    except:
        return None


def swallow_broad(g):
    try:
        return g()
    except Exception:
        return None


def match_message(g):
    try:
        return g()
    except ValueError as exc:
        if "boom" in str(exc):
            return None
        raise


def raise_untyped():
    raise LocalError("no catch semantics")
