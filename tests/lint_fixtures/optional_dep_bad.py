"""Violates optional-dep-guard: unguarded module-level optional imports."""

import scipy.optimize
from numba import njit

__all__ = ["scipy", "njit"]
