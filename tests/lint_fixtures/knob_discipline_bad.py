"""Violates knob-discipline: raw reads, an undeclared and a retired knob."""

import os


def raw_read():
    return os.environ.get("REPRO_SHARD", "")


def raw_getenv():
    return os.getenv("REPRO_FUSE")


def raw_subscript():
    return os.environ["REPRO_ENCODE"]


def undeclared():
    return os.environ.get("REPRO_NO_SUCH_KNOB")


RETIRED_NAME = "REPRO_ADMIT_EXACT_MAX"
