"""Conforms to codegen-hygiene: compile() needs no whitelist; the
whitelisted exec-with-namespace form is exercised in test_repro_lint.py
with a codegen-module path."""


def build(src):
    return compile(src, "<generated>", "exec")
