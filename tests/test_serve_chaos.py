"""Chaos soak: randomized fault injection over the multi-tenant service.

The robustness contract, asserted end to end:

* every query ends in **exactly one** of {bit-identical correct result,
  clean typed :class:`~repro.errors.ReproError`} — no unclassified
  exceptions, no silent wrong answers, no hangs (every future resolves
  within a hard timeout);
* **no cross-tenant corruption**: tenants draw values from disjoint
  ranges, so any tenant dictionary or result row containing a foreign
  value is proof of a leak — none may exist, faults or not;
* the service stays **serviceable after the storm**: with injection
  disarmed, the same service instance answers every request cleanly and
  bit-identically to the fault-free reference.

The CI chaos smoke runs this module with ``REPRO_FAULTS`` forced on (and
once more with ``REPRO_BATCH_NDARRAY=off``); locally the test arms its
own injector when the env knob is absent, so it never silently runs
fault-free.
"""

import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro import config
from repro.engine import frontier, shard
from repro.engine.cancellation import Deadline, checkpoint_scope
from repro.engine.expansion_plan import GUARD, ExpansionPlan
from repro.engine.ops import WorkCounter
from repro.errors import QueryTimeout, ReproError, ServiceOverloaded
from repro.serve.faults import FaultInjector, PoisonedValue, poison_codec
from repro.serve.workloads import (
    build_demo_service,
    demo_requests,
    tenant_name,
    tenant_range,
)

N_TENANTS = 2
SOAK_ROUNDS = 20  # x tenants x 3 query shapes = 120 queries
RESULT_TIMEOUT_S = 60.0


def chaos_injector() -> FaultInjector:
    """The CI-provided fault spec when present, a default storm otherwise."""
    if config.get("REPRO_FAULTS"):
        return FaultInjector.from_env()
    injector = FaultInjector(seed=config.get("REPRO_FAULTS_SEED", default=7))
    injector.arm("worker", probability=0.03)
    injector.arm("engine", probability=0.05)
    injector.arm("alloc", probability=0.03)
    injector.arm("timeout", probability=0.03)
    injector.arm("shard", probability=0.05)
    return injector


def request_key(request: dict) -> tuple:
    return (request["tenant"], request["database"], repr(request["query"]))


def quiet() -> FaultInjector:
    """Unarmed injector: keeps reference runs fault-free even when the CI
    chaos env (``REPRO_FAULTS``) arms services by default."""
    return FaultInjector(seed=0)


def reference_digests(requests: list[dict]) -> dict[tuple, list]:
    """Fault-free canonical rows per distinct (tenant, db, query)."""
    digests: dict[tuple, list] = {}
    with build_demo_service(tenants=N_TENANTS, faults=quiet()) as clean:
        for request in requests:
            key = request_key(request)
            if key in digests:
                continue
            result = clean.execute(
                request["tenant"], request["database"], request["query"],
                engine="generic",
            )
            digests[key] = result.rows
    return digests


def allowed_values(i: int) -> set[int]:
    """Every int tenant ``i`` may legitimately intern: its stored range
    plus the ``add`` UDF's output range (sums of two stored values)."""
    lo, hi = tenant_range(i)
    return set(range(lo, hi)) | set(range(2 * lo, 2 * (hi - 1) + 1))


def test_chaos_soak_every_query_correct_or_typed():
    requests = demo_requests(tenants=N_TENANTS, rounds=SOAK_ROUNDS, seed=11)
    digests = reference_digests(requests)

    injector = chaos_injector()
    service = build_demo_service(
        tenants=N_TENANTS,
        max_workers=4,
        queue_depth=6,
        faults=injector,
        # Below the ~79-value steady-state domain, so compaction fires on
        # every idle window — the soak proves compaction is safe under
        # concurrent traffic (and may heal the poisoned entry below).
        dictionary_cap=60,
    )
    outcomes = {"ok": 0, "degraded": 0, "typed": 0, "overload": 0}
    with service:
        futures = []
        for index, request in enumerate(requests):
            if index == len(requests) // 3:
                # Mid-soak poison: corrupt a tenant0 dictionary entry.
                # Encoded stages on affected queries die at the decode
                # boundary and fall back; a compaction may heal it.
                poison_codec(service.tenant(tenant_name(0)).codec, "x")
            try:
                futures.append((request, service.submit(**request)))
            except ServiceOverloaded:
                outcomes["overload"] += 1
        for request, future in futures:
            try:
                # The hard no-hang bound: a stuck worker fails the test.
                result = future.result(timeout=RESULT_TIMEOUT_S)
            except ReproError as err:
                # Clean typed failure: machine-readable context, correct
                # tenant attribution, never a bare string-match error.
                ctx = err.context()
                assert ctx["tenant"] == request["tenant"]
                assert isinstance(ctx["retryable"], bool)
                outcomes["typed"] += 1
                continue
            # Any non-ReproError exception propagates and fails the test:
            # that is the "no unclassified errors" gate.
            assert result.rows == digests[request_key(request)], (
                f"wrong answer under chaos for {request_key(request)} "
                f"via {result.backend}"
            )
            outcomes["ok"] += 1
            if result.degraded:
                outcomes["degraded"] += 1

        # The storm actually happened (otherwise this test proves nothing).
        assert sum(injector.fired.values()) > 0 or outcomes["overload"] > 0
        assert outcomes["ok"] > 0, "chaos drowned every request"

        # ---- no cross-tenant corruption -----------------------------
        for i in range(N_TENANTS):
            tenant = service.tenant(tenant_name(i))
            legal = allowed_values(i)
            for attr, dictionary in tenant.codec.dictionaries.items():
                for value in dictionary.values:
                    if isinstance(value, PoisonedValue):
                        continue  # the sentinel we planted (tenant0 only)
                    assert value in legal, (
                        f"tenant{i} dictionary {attr!r} holds foreign "
                        f"value {value!r}"
                    )
            # Results held in the reference digests stay in-range too.
            for (tname, _, _), rows in digests.items():
                if tname != tenant_name(i):
                    continue
                for row in rows:
                    assert all(v in legal for v in row)

        # ---- serviceable after the storm ----------------------------
        injector.disarm()
        for request in {request_key(r): r for r in requests}.values():
            result = service.execute(
                request["tenant"], request["database"], request["query"],
                engine="generic",
            )
            assert result.rows == digests[request_key(request)]
        # tenant0's poison either got compacted away or still forces the
        # decoded fallback — both end in correct answers (just asserted);
        # tenant1 must have been untouched by tenant0's poison.
        assert not any(
            isinstance(v, PoisonedValue)
            for d in service.tenant(tenant_name(1)).codec.dictionaries.values()
            for v in d.values
        )


def test_chaos_soak_compactions_bound_dictionary_growth():
    """Long-uptime memory: under a tight cap the interned-value count
    stays bounded by the live domain (stored values plus one query's UDF
    outputs), no matter how many requests the service has absorbed."""
    requests = demo_requests(
        tenants=1, rounds=12, engines=("generic",), seed=5
    )
    with build_demo_service(
        tenants=1, dictionary_cap=40, faults=quiet()
    ) as service:
        for request in requests:
            service.execute(**request)
        tenant = service.tenant(tenant_name(0))
        assert tenant.compactions >= 1
        # x, y draw from 20 stored values each; z from stored z plus the
        # UDF's x+y sums (all < 39) — the total can never pass ~79.
        assert tenant.codec.total_values() <= 100
        metrics = service.metrics()
        assert metrics["completed"] == len(requests)
        assert metrics["engine_faults"] == 0


# ----------------------------------------------------------------------
# Sharded execution under chaos
# ----------------------------------------------------------------------

@contextmanager
def sharding_forced(workers=3):
    """Force the shard backend via the module-global knobs (service
    worker threads don't see the test thread's ContextVar overrides)."""
    saved = (shard.SHARD_MODE, shard.SHARD_WORKERS)
    shard.SHARD_MODE, shard.SHARD_WORKERS = "on", workers
    try:
        yield
    finally:
        shard.SHARD_MODE, shard.SHARD_WORKERS = saved


def test_shard_worker_kill_mid_query_bit_identical_or_typed():
    """The fault injector kills individual shard workers mid-query: every
    query still ends bit-identical-or-typed, no shard task leaks, and the
    service answers cleanly once the storm passes."""
    requests = demo_requests(tenants=1, rounds=8, seed=13)
    digests = reference_digests(requests[:1] and requests)
    with sharding_forced(workers=3):
        injector = FaultInjector(seed=3)
        injector.arm("shard", probability=0.5)
        outcomes = {"ok": 0, "degraded": 0, "typed": 0}
        with build_demo_service(
            tenants=1, max_workers=2, queue_depth=8, faults=injector
        ) as service:
            for request in requests:
                try:
                    result = service.execute(**request)
                except ReproError as err:
                    assert err.context()["tenant"] == request["tenant"]
                    outcomes["typed"] += 1
                    continue
                assert result.rows == digests[request_key(request)], (
                    f"wrong answer after shard kill via {result.backend}"
                )
                outcomes["ok"] += 1
                if result.degraded:
                    outcomes["degraded"] += 1
            # The storm actually killed shard workers, queries survived,
            # and every shard task was joined (no leaks).
            assert injector.fired["shard"] > 0
            assert outcomes["ok"] > 0
            assert outcomes["degraded"] > 0, (
                "a killed shard must degrade at least one query to an "
                "unsharded stage"
            )
            assert shard.active_tasks() == 0
            # Serviceable after the storm, sharded stage restored.
            injector.disarm()
            result = service.execute(**requests[0])
            assert result.rows == digests[request_key(requests[0])]
            assert not result.degraded


def test_deadline_checkpoints_reach_every_shard():
    """A pre-expired deadline installed as a checkpoint hook must be
    observed by *every* shard task (the submit-time context snapshot
    carries the hook into the pool), the dispatcher must join all shards
    before surfacing the ``QueryTimeout``, and nothing may leak."""
    plan = ExpansionPlan(
        ("a", "b"),
        ("a", "b", "x"),
        ((GUARD, (0,), {(i,): (i % 5,) for i in range(64)}),),
        encoded=True,
    )
    rng = np.random.default_rng(17)
    block = rng.integers(0, 64, size=(4096, 2)).astype(np.int64)
    # Warm the plan's lazy ndarray specs outside the hook's scope: their
    # compilation checkpoints in the *submitting* thread, and this test
    # is about the checkpoints inside the shard tasks.
    plan.execute_batch_ndarray_local(block[:4], WorkCounter())
    with sharding_forced(workers=4):
        expected_shards = sum(
            1
            for idx in frontier.hash_partition(
                block, plan.shard_positions(), 4
            )
            if len(idx)
        )
        assert expected_shards > 1, "partition must actually fan out"
        deadline = Deadline(0.0)
        observed = []
        lock = threading.Lock()

        def expired_deadline_checkpoint():
            with lock:
                observed.append(threading.current_thread().name)
            deadline.check()  # raises QueryTimeout: the budget is spent

        with checkpoint_scope(expired_deadline_checkpoint):
            with pytest.raises(QueryTimeout):
                plan.execute_batch_ndarray(block, WorkCounter())
        # Every shard task hit the hook (each checks in at task start
        # from inside the pool), and all were joined before the raise.
        shard_observations = [
            name for name in observed if name.startswith("repro-shard")
        ]
        assert len(shard_observations) >= expected_shards
        assert shard.active_tasks() == 0
    # The kernel stays healthy afterwards: same call, no deadline, runs.
    with sharding_forced(workers=4):
        out, mask = plan.execute_batch_ndarray(block, WorkCounter())
    assert out.shape == (4096, 3)
