"""The Submodularity Algorithm — Algorithm 2 (repro.core.sma)."""

import math

import pytest

from repro.core.sma import SMAError, submodularity_algorithm
from repro.datagen.product import random_database
from repro.datagen.worstcase import fig4_instance, fig4_query
from repro.engine.binary_join import binary_join_plan
from repro.lattice.builders import lattice_from_query
from repro.query.query import triangle_query


def reference(query, db):
    out, _ = binary_join_plan(query, db)
    return set(out.project(tuple(sorted(query.variables))).tuples)


class TestCorrectness:
    def test_triangle(self):
        query = triangle_query()
        db = random_database(query, 120, seed=5)
        lattice, inputs = lattice_from_query(query)
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
        assert set(out.tuples) == reference(query, db)

    def test_fig4_quasi_product(self):
        query, db = fig4_instance(27)
        lattice, inputs = lattice_from_query(query)
        out, stats = submodularity_algorithm(query, db, lattice, inputs)
        assert set(out.tuples) == reference(query, db)
        # |Q| = m^4 = 81 on the m=3 quasi-product instance.
        assert len(out) == 81

    def test_triangle_skewed_sizes(self):
        query = triangle_query()
        db = random_database(query, 60, seed=11)
        lattice, inputs = lattice_from_query(query)
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
        assert set(out.tuples) == reference(query, db)

    def test_empty_db(self):
        query = triangle_query()
        db = random_database(query, 0, seed=0)
        lattice, inputs = lattice_from_query(query)
        out, _ = submodularity_algorithm(query, db, lattice, inputs)
        assert len(out) == 0


class TestBudget:
    def test_fig4_within_four_thirds(self):
        """Thm. 5.28 shape: SMA's work on the Fig. 4 worst case stays
        within a constant of N^{4/3} (measured at two sizes)."""
        works = []
        sizes = []
        for n in (27, 216):
            query, db = fig4_instance(n)
            lattice, inputs = lattice_from_query(query)
            _, stats = submodularity_algorithm(query, db, lattice, inputs)
            works.append(stats.tuples_touched)
            sizes.append(len(db["R"]))
        ratio = math.log(works[1] / works[0]) / math.log(sizes[1] / sizes[0])
        # measured exponent must be well below the chain bound's 1.5.
        assert ratio < 1.45

    def test_no_good_proof_raises(self):
        from repro.lattice.builders import fig9_lattice
        from repro.datagen.from_lattice import worst_case_database

        lat0, inp0 = fig9_lattice()
        query, db, _ = worst_case_database(lat0, inp0, scale=2)
        lattice, inputs = lattice_from_query(query)
        with pytest.raises(SMAError):
            submodularity_algorithm(query, db, lattice, inputs)
