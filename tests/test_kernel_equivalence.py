"""Differential property tests: compiled kernel ≡ naive reference path.

The positional execution kernel (compiled expansion plans, functional
guard lookups, index-inheriting relations, the batched frontier backend)
must be *observationally identical* to the retained naive path in
``repro.engine.reference``: identical output relations and identical
``tuples_touched``, over randomized lattice/FD instances from
``repro.datagen``.  The instance generators and assertion machinery live
in ``tests/differential.py`` (shared with the cross-engine fuzz suite).
"""

import random

import pytest

from differential import (
    all_instances,
    assert_batch_backend_equivalence,
    assert_leapfrog_substrate_equivalence,
)
from repro.datagen.from_lattice import worst_case_database
from repro.engine.database import Database
from repro.engine.ops import WorkCounter, natural_join
from repro.engine.reference import (
    reference_expand_relation,
    reference_expand_tuple,
    reference_natural_join,
    reference_udf_consistent,
)
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import fig9_lattice

SEEDS = range(8)


# ----------------------------------------------------------------------
# expand_relation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_expand_relation_equivalence(seed):
    for query, db in all_instances(seed):
        for name, rel in db.relations.items():
            kernel_counter = WorkCounter()
            naive_counter = WorkCounter()
            kernel = db.expand_relation(rel, counter=kernel_counter)
            naive = reference_expand_relation(db, rel, counter=naive_counter)
            assert set(kernel.schema) == set(naive.schema), name
            aligned = naive.project(kernel.schema)
            assert set(kernel.tuples) == set(aligned.tuples), name
            assert (
                kernel_counter.tuples_touched == naive_counter.tuples_touched
            ), f"{name}: work counts diverge"


# ----------------------------------------------------------------------
# expand_tuple
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_expand_tuple_equivalence(seed):
    rng = random.Random(seed + 7)
    for query, db in all_instances(seed):
        for name, rel in db.relations.items():
            sample = list(rel.tuples)[:10]
            # Also probe dangling/garbage bindings.
            sample += [
                tuple(rng.randrange(10) for _ in rel.schema) for _ in range(5)
            ]
            for t in sample:
                binding = dict(zip(rel.schema, t))
                snapshot = dict(binding)
                kernel_counter = WorkCounter()
                naive_counter = WorkCounter()
                kernel = db.expand_tuple(binding, counter=kernel_counter)
                assert binding == snapshot, "expand_tuple must not mutate"
                naive = reference_expand_tuple(
                    db, binding, counter=naive_counter
                )
                assert kernel == naive, (name, t)
                assert (
                    kernel_counter.tuples_touched
                    == naive_counter.tuples_touched
                ), (name, t)


@pytest.mark.parametrize("seed", SEEDS)
def test_expand_tuple_partial_target_equivalence(seed):
    for query, db in all_instances(seed):
        for name, rel in db.relations.items():
            closure = db.fds.closure(rel.varset)
            extra = sorted(closure - rel.varset)
            if not extra:
                continue
            # A strict sub-target between the schema and the closure.
            target = frozenset(rel.varset) | {extra[0]}
            for t in list(rel.tuples)[:10]:
                binding = dict(zip(rel.schema, t))
                kernel_counter = WorkCounter()
                naive_counter = WorkCounter()
                kernel = db.expand_tuple(
                    binding, target=target, counter=kernel_counter
                )
                naive = reference_expand_tuple(
                    db, binding, target=target, counter=naive_counter
                )
                assert kernel == naive, (name, t)
                assert (
                    kernel_counter.tuples_touched
                    == naive_counter.tuples_touched
                ), (name, t)


def test_udf_filter_respects_post_hoc_registration():
    """Compiled UDF filters are salted with the registry size: a UDF
    registered after the first compilation must be enforced."""
    from repro.fds.udf import UDF

    db = Database([Relation("R", ("x", "y"), [(1, 2)])])
    assert db.udf_consistent({"x": 1, "y": 99})
    db.udfs.register(UDF("f", ("x",), "y", lambda x: x + 1))
    assert not db.udf_consistent({"x": 1, "y": 99})
    assert db.udf_consistent({"x": 1, "y": 2})


def test_expand_tuple_inconsistent_guard_returns_none():
    """The 'all matches must agree' check: an fd-violating guard makes the
    tuple dangling in both paths instead of silently taking one image."""
    r = Relation("R", ("x",), [(1,), (2,)])
    guard = Relation("G", ("x", "y"), [(1, 10), (1, 11), (2, 20)])
    db = Database([r, guard], fds=FDSet([FD("x", "y")]))
    assert db.expand_tuple({"x": 1}) is None  # ambiguous image
    assert reference_expand_tuple(db, {"x": 1}) is None
    assert db.expand_tuple({"x": 2}) == {"x": 2, "y": 20}
    assert reference_expand_tuple(db, {"x": 2}) == {"x": 2, "y": 20}


def test_expand_relation_inconsistent_guard_keeps_all_images():
    """The whole-relation path keeps join set semantics: one output row per
    distinct image (and the counter charges each emitted row)."""
    r = Relation("R", ("x",), [(1,), (2,), (3,)])
    guard = Relation("G", ("x", "y"), [(1, 10), (1, 11), (2, 20)])
    db = Database([r, guard], fds=FDSet([FD("x", "y")]))
    kernel_counter = WorkCounter()
    naive_counter = WorkCounter()
    kernel = db.expand_relation(r, counter=kernel_counter)
    naive = reference_expand_relation(db, r, counter=naive_counter)
    assert set(kernel.tuples) == {(1, 10), (1, 11), (2, 20)}
    assert set(kernel.tuples) == set(naive.project(kernel.schema).tuples)
    assert kernel_counter.tuples_touched == naive_counter.tuples_touched == 3


# ----------------------------------------------------------------------
# natural_join (smaller-side build) and udf consistency
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_natural_join_equivalence(seed):
    rng = random.Random(seed + 31)
    attrs = ("x", "y", "z")
    for _ in range(6):
        left_width = rng.randint(1, 3)
        right_width = rng.randint(1, 3)
        left = Relation(
            "L",
            attrs[:left_width],
            {
                tuple(rng.randrange(4) for _ in range(left_width))
                for _ in range(rng.randint(0, 25))
            },
        )
        right = Relation(
            "R",
            attrs[3 - right_width:],
            {
                tuple(rng.randrange(4) for _ in range(right_width))
                for _ in range(rng.randint(0, 25))
            },
        )
        kernel_counter = WorkCounter()
        naive_counter = WorkCounter()
        kernel = natural_join(left, right, counter=kernel_counter)
        naive = reference_natural_join(left, right, counter=naive_counter)
        assert kernel.schema == naive.schema
        assert set(kernel.tuples) == set(naive.tuples)
        assert kernel_counter.tuples_touched == naive_counter.tuples_touched


@pytest.mark.parametrize("seed", SEEDS)
def test_udf_consistency_equivalence(seed):
    rng = random.Random(seed + 63)
    for query, db in all_instances(seed):
        variables = sorted(query.variables)
        for _ in range(20):
            row = {v: rng.randrange(4) for v in variables}
            assert db.udf_consistent(row) == reference_udf_consistent(db, row)


# ----------------------------------------------------------------------
# Batched frontier backend and the leapfrog substrate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_batched_backend_equivalence(seed):
    """Row-loop, columnwise and numpy batch paths ≡ per-tuple reference
    (aligned outputs and bit-identical tuples_touched)."""
    rng = random.Random(seed + 4096)
    for query, db in all_instances(seed):
        assert_batch_backend_equivalence(db, rng)


@pytest.mark.parametrize("seed", SEEDS)
def test_leapfrog_substrate_equivalence(seed):
    """Kernel-ported LFTJ ≡ LFTJ on the naive reference substrate."""
    for query, db in all_instances(seed):
        assert_leapfrog_substrate_equivalence(query, db)


def test_batched_backend_mixed_types_falls_back():
    """A column mixing ints and strings must take the pure-python
    columnwise path and still match the per-tuple executor."""
    guard = Relation(
        "G", ("x", "y"), [(1, 10), ("a", 20), (2, 30), ("b", 40)]
    )
    db = Database(
        [Relation("R", ("x",), [(1,), ("a",), (2,)]), guard],
        fds=FDSet([FD("x", "y")]),
    )
    plan = db.expansion_plan(("x",))
    rows = [(1,), ("a",), (99,), ("b",), (2,)] * 40
    import repro.engine.expansion_plan as ep

    saved = (ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS)
    try:
        ep.COLUMN_MIN_ROWS = 1
        ep.NUMPY_MIN_ROWS = 1  # requested, but the type gate must refuse
        c_batch = WorkCounter()
        batch = plan.execute_batch(rows, c_batch)
    finally:
        ep.COLUMN_MIN_ROWS, ep.NUMPY_MIN_ROWS = saved
    c_tuple = WorkCounter()
    per_tuple = [plan.execute(t, c_tuple) for t in rows]
    assert batch == per_tuple
    assert c_batch.tuples_touched == c_tuple.tuples_touched


# ----------------------------------------------------------------------
# Full-run differential: worst-case generator instances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scale", [2, 3])
def test_worst_case_expansion_equivalence(scale):
    lat, inputs = fig9_lattice()
    query, db, _ = worst_case_database(lat, inputs, scale=scale)
    for name, rel in db.relations.items():
        kernel_counter = WorkCounter()
        naive_counter = WorkCounter()
        kernel = db.expand_relation(rel, counter=kernel_counter)
        naive = reference_expand_relation(db, rel, counter=naive_counter)
        assert set(kernel.tuples) == set(naive.project(kernel.schema).tuples)
        assert kernel_counter.tuples_touched == naive_counter.tuples_touched
