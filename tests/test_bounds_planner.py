"""Bound calculators and the planner (repro.core.bounds / planner)."""

import math

import pytest

from repro.core.bounds import (
    agm_bound_log2,
    closure_bound_log2,
    coatomic_bound_log2,
    compute_bounds,
    glvv_bound_log2,
    normal_bound_log2,
)
from repro.core.planner import Planner
from repro.datagen.product import random_database
from repro.datagen.worstcase import (
    fig4_instance,
    grid_instance_example_5_5,
    m3_modular_instance,
)
from repro.engine.binary_join import binary_join_plan
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    fig1_lattice,
    fig4_lattice,
    fig9_lattice,
    lattice_from_query,
    m3_query_lattice,
)
from repro.query.query import Atom, Query, paper_example_query, triangle_query


class TestAGM:
    def test_triangle(self):
        query = triangle_query()
        sizes = {"R": 64, "S": 64, "T": 64}
        assert agm_bound_log2(query, sizes) == pytest.approx(9.0)

    def test_triangle_asymmetric_eq4(self):
        """Eq. (4): AGM = min(sqrt(R·S·T), R·S, R·T, S·T)."""
        query = triangle_query()
        sizes = {"R": 4, "S": 4, "T": 4096}
        # sqrt = 8, RS = 4: bound = 2^4 (log2 = 4).
        assert agm_bound_log2(query, sizes) == pytest.approx(4.0)


class TestClosureBound:
    def test_simple_key_tightens(self, simple_key_query):
        """Sec. 2: y→z in S adds the R·K cover option."""
        sizes = {"R": 4, "S": 1 << 20, "T": 4, "K": 4}
        plain = agm_bound_log2(simple_key_query, sizes)
        closed = closure_bound_log2(simple_key_query, sizes)
        # AGM = min(R·T, S·K) = 4 bits; AGM(Q+) adds R·K = 4 bits too —
        # use sizes making the difference visible:
        sizes = {"R": 4, "S": 1 << 20, "T": 1 << 20, "K": 4}
        plain = agm_bound_log2(simple_key_query, sizes)
        closed = closure_bound_log2(simple_key_query, sizes)
        assert closed < plain  # R·K beats both R·T and S·K

    def test_closure_fails_for_nonsimple(self):
        """Sec. 2's counterexample: R(x), S(y), T(x,y,z), xy→z with
        |T| = M >> N²: AGM(Q+) = M but GLVV = N²."""
        query = Query(
            [Atom("R", ("x",)), Atom("S", ("y",)), Atom("T", ("x", "y", "z"))],
            FDSet([FD("xy", "z")], "xyz"),
        )
        sizes = {"R": 4, "S": 4, "T": 1 << 20}
        closed = closure_bound_log2(query, sizes)
        glvv, _, _ = glvv_bound_log2(query, sizes)
        assert closed == pytest.approx(20.0)
        assert glvv == pytest.approx(4.0)


class TestBoundHierarchy:
    def test_fig1_report(self):
        query = paper_example_query()
        sizes = {"R": 256, "S": 256, "T": 256}
        report = compute_bounds(query, sizes)
        assert report.glvv == pytest.approx(12.0)       # N^{3/2}
        assert report.chain == pytest.approx(12.0)      # tight chain
        assert report.agm >= 15.9                       # N² without fds
        assert report.normal == pytest.approx(report.coatomic)

    def test_fig4_chain_gap(self):
        query, db = fig4_instance(64)
        report = compute_bounds(query, db.sizes())
        assert report.glvv == pytest.approx(8.0, abs=0.01)       # N^{4/3}
        assert report.chain == pytest.approx(9.0, abs=0.01)      # N^{3/2}
        assert report.glvv < report.chain

    def test_m3_gap_between_glvv_and_coatomic(self):
        # On M3, GLVV = 2 > coatomic cover = 3/2: non-normal lattice.
        lat, inputs = m3_query_lattice()
        logs = {name: 1.0 for name in inputs}
        glvv = 2.0
        coat = coatomic_bound_log2(lat, inputs, logs)
        norm = normal_bound_log2(lat, inputs, logs)
        assert coat == pytest.approx(1.5)
        assert norm == pytest.approx(1.5)
        assert glvv > coat

    def test_normal_equals_coatomic_always(self):
        # LP duality: the two computations agree on every lattice.
        for lat, inputs in [fig1_lattice(), fig4_lattice(), fig9_lattice(),
                            m3_query_lattice()]:
            logs = {name: 1.0 for name in inputs}
            assert normal_bound_log2(lat, inputs, logs) == pytest.approx(
                coatomic_bound_log2(lat, inputs, logs)
            )

    def test_glvv_below_agm(self):
        query = paper_example_query()
        sizes = {"R": 100, "S": 100, "T": 100}
        report = compute_bounds(query, sizes)
        assert report.glvv <= report.agm + 1e-9
        assert report.glvv <= report.closure + 1e-9
        assert report.glvv <= report.chain + 1e-9


class TestPlanner:
    def test_no_fds_generic_join(self):
        query = triangle_query()
        db = random_database(query, 50, seed=0)
        planner = Planner(query, db)
        choice = planner.choose()
        assert choice.algorithm == "generic-join"

    def test_fig1_chooses_chain(self):
        query, db = grid_instance_example_5_5(36)
        choice = Planner(query, db).choose()
        assert choice.algorithm == "chain"

    def test_fig4_chooses_sma(self):
        query, db = fig4_instance(27)
        choice = Planner(query, db).choose()
        assert choice.algorithm == "sma"

    def test_fig9_chooses_csma(self):
        from repro.datagen.from_lattice import worst_case_database
        from repro.lattice.builders import fig9_lattice

        lat0, inp0 = fig9_lattice()
        query, db, _ = worst_case_database(lat0, inp0, scale=2)
        choice = Planner(query, db).choose()
        assert choice.algorithm == "csma"

    @pytest.mark.parametrize("maker", [
        lambda: grid_instance_example_5_5(25),
        lambda: fig4_instance(27),
        lambda: m3_modular_instance(8),
    ])
    def test_run_matches_reference(self, maker):
        query, db = maker()
        out, choice = Planner(query, db).run()
        ref, _ = binary_join_plan(query, db)
        assert set(out.project(tuple(sorted(query.variables))).tuples) == set(
            ref.project(tuple(sorted(query.variables))).tuples
        )
