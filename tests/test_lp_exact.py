"""The exact rational LP kernel, differentially verified against scipy.

Four contracts (PR 3 satellites):

1. **Differential property suite** — randomized CLLP/LLP/edge-cover
   instances over many seeds: the exact objective equals the scipy
   objective (to float tolerance), exact certificates always verify, and
   ``Hypergraph.edge_cover_vertices`` (now routed through the pruned
   enumerator in ``repro.lp.exact``) matches the flat reference
   enumerator in ``repro.util.rational`` vertex-for-vertex.
2. **Dual-sign regression** — the sign of ``<=``-row marginals is pinned
   on a hand-solved 2x2 LP for *both* backends, so a scipy upgrade
   cannot silently flip the chain-bound duals
   (cf. ``repro/lp/solver.py``'s negation of HiGHS marginals).
3. **Backend knob** — ``REPRO_LP_BACKEND={exact,scipy,both,auto}``
   policy resolution (``auto`` ≡ ``exact``: canonical exact solve;
   ``scipy`` ≡ ``both``: the same solve plus a per-solve scipy
   cross-check), resolved-backend-keyed solve memos, and the
   policy-free lattice memos.
4. **Canonical-vertex selection** — degenerate programs return the
   lex-min vertex of the optimal face (primal and dual), pinned on
   hand-built degenerate programs, a CLLP instance with a multi-vertex
   optimal dual face, and vertex-for-vertex against the enumeration
   argmin on every random program.
5. **Importability split** — ``repro.lp`` imports and solves with scipy
   blocked (the exact backend is the floor; scipy is an optional extra).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap
from dataclasses import replace
from fractions import Fraction
from pathlib import Path

import pytest

from differential import lp_backend_forced
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig7_lattice,
    fig8_lattice,
    fig9_lattice,
    m3,
    n5,
)
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.lp.exact import (
    LPInfeasibleError,
    LPUnboundedError,
    cross_check_vertices,
    enumerate_vertices,
    minimize_by_enumeration,
    solve_exact_lp,
)
from repro.lp.llp import LatticeLinearProgram
from repro.lp.solver import (
    HAVE_SCIPY,
    LPError,
    lp_backend,
    solve_lp,
)
from repro.query.hypergraph import Hypergraph

import repro.lp.solver as solver_mod

requires_scipy = pytest.mark.skipif(
    not HAVE_SCIPY, reason="differential comparison needs the scipy extra"
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# The exact kernel on its own: simplex vs vertex enumeration
# ----------------------------------------------------------------------

def _random_program(rng: random.Random):
    n = rng.randint(1, 4)
    m = rng.randint(1, 5)
    a_ub = [[rng.randint(-3, 3) for _ in range(n)] for _ in range(m)]
    b_ub = [rng.randint(-2, 5) for _ in range(m)]
    costs = [rng.randint(0, 5) for _ in range(n)]  # c >= 0: bounded below
    return costs, a_ub, b_ub


@pytest.mark.parametrize("seed", range(40))
def test_simplex_matches_vertex_enumeration(seed):
    """Two independent exact engines, one optimum *and one vertex*: the
    simplex value must equal the brute-force minimum over enumerated
    vertices, and — canonical-vertex selection — the returned primal must
    be the lex-min optimal vertex, which is exactly what
    ``minimize_by_enumeration``'s ``(value, point)`` tie-break yields."""
    rng = random.Random(seed)
    costs, a_ub, b_ub = _random_program(rng)
    try:
        certificate = solve_exact_lp(costs, a_ub, b_ub)
    except LPInfeasibleError:
        assert enumerate_vertices(a_ub, b_ub) == []
        return
    assert certificate.verify()
    value, vertex = minimize_by_enumeration(costs, a_ub, b_ub)
    assert value == certificate.objective
    assert tuple(vertex) == certificate.x


@pytest.mark.parametrize("seed", range(25))
def test_vertex_enumerator_matches_flat_reference(seed):
    """The pruned DFS enumerator == the flat combinations scan."""
    rng = random.Random(1000 + seed)
    n = rng.randint(1, 4)
    m = rng.randint(1, 5)
    a_ub = [[rng.randint(-2, 2) for _ in range(n)] for _ in range(m)]
    b_ub = [rng.randint(-1, 4) for _ in range(m)]
    assert sorted(enumerate_vertices(a_ub, b_ub)) == sorted(
        cross_check_vertices(a_ub, b_ub)
    )


def test_unbounded_and_infeasible_are_classified():
    with pytest.raises(LPUnboundedError):
        solve_exact_lp([-1.0], a_ub=[[0.0]], b_ub=[1.0])
    with pytest.raises(LPInfeasibleError):
        solve_exact_lp([1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])
    # No constraints at all: x = 0 for c >= 0, unbounded otherwise.
    assert solve_exact_lp([2.0, 3.0]).objective == 0
    with pytest.raises(LPUnboundedError):
        solve_exact_lp([2.0, -3.0])


def test_certificate_rejects_tampering():
    certificate = solve_exact_lp(
        [3.0, 5.0], a_ub=[[-1.0, -1.0], [1.0, -1.0]], b_ub=[-2.0, 0.0]
    )
    assert certificate.verify()
    worse = replace(certificate, x=(Fraction(2), Fraction(2)))
    assert not worse.verify()  # feasible but not optimal: gap opens
    infeasible = replace(certificate, x=(Fraction(0), Fraction(0)))
    assert not infeasible.verify()
    bad_dual = replace(certificate, y_ub=(Fraction(-1), certificate.y_ub[1]))
    assert not bad_dual.verify()


def _degenerate_cube_corner(n: int = 6):
    a_ub = [[1.0 if j == i else 0.0 for j in range(n)] for i in range(n)]
    a_ub += [[-1.0] * n]
    b_ub = [1.0] * n + [0.0]
    return a_ub, b_ub


def test_degenerate_program_terminates():
    """A fully degenerate cube corner (many ties) must not cycle."""
    n = 6
    a_ub, b_ub = _degenerate_cube_corner(n)
    certificate = solve_exact_lp([1.0] * n, a_ub, b_ub)
    assert certificate.objective == 0
    assert certificate.verify()


# ----------------------------------------------------------------------
# Canonical-vertex selection on hand-built degenerate programs
# ----------------------------------------------------------------------

def test_canonical_vertex_on_degenerate_cube_corner():
    """The fully degenerate cube corner, with a flat objective so the
    *whole cube* is the optimal face: the canonical solution must be its
    lex-min vertex — the origin — and two independent solves must agree
    on every field of the certificate."""
    n = 6
    a_ub, b_ub = _degenerate_cube_corner(n)
    first = solve_exact_lp([0.0] * n, a_ub, b_ub)
    second = solve_exact_lp([0.0] * n, a_ub, b_ub)
    assert first.x == tuple([Fraction(0)] * n)
    assert first == second  # identical certificate, not just objective
    # The original (unique-optimum) objective stays pinned at the origin.
    assert solve_exact_lp([1.0] * n, a_ub, b_ub).x == first.x


def test_canonical_vertex_is_lex_min_on_segment_face():
    """min x0 + x1 over the unit square with x0 + x1 >= 1: the optimal
    face is the whole segment from (1,0) to (0,1); the canonical vertex
    is its lex-min endpoint (0,1)."""
    a_ub = [[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]]
    b_ub = [-1.0, 1.0, 1.0]
    certificate = solve_exact_lp([1.0, 1.0], a_ub, b_ub)
    assert certificate.x == (Fraction(0), Fraction(1))
    assert certificate.verify()
    assert solve_exact_lp([1.0, 1.0], a_ub, b_ub) == certificate


def test_canonical_dual_is_lex_min_on_degenerate_dual_face():
    """max x0 + x1 s.t. x0 <= 1, x1 <= 1, x0 + x1 <= 2: the third row is
    redundant but binding, so the primal vertex (1,1) is degenerate and
    the dual optimal face is the segment {(1-t, 1-t, t) : t in [0,1]}.
    Its lex-min vertex is (0, 0, 1) — the canonical dual must pick it,
    deterministically."""
    first = solve_exact_lp([-1.0, -1.0], [[1, 0], [0, 1], [1, 1]], [1, 1, 2])
    second = solve_exact_lp([-1.0, -1.0], [[1, 0], [0, 1], [1, 1]], [1, 1, 2])
    assert first.x == (Fraction(1), Fraction(1))
    assert first.y_ub == (Fraction(0), Fraction(0), Fraction(1))
    assert first == second
    assert first.verify()


def test_cllp_dual_face_is_degenerate_and_canonical():
    """A CLLP whose explicit dual LP has a multi-vertex optimal face (the
    zero-cost s/m variables of Eq. (26)) — the trigger for the old CSMA
    carve-out.  The canonical solve must return the lex-min optimal
    vertex (cross-checked against exhaustive vertex enumeration) and two
    independent solves of the dual must agree exactly.  The diamond M3
    with equal cardinalities has a 3-vertex optimal dual face."""
    lattice = m3()
    inputs = {f"R{a}": a for a in lattice.coatoms}
    logs = {name: 3.0 for name in inputs}
    program = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
    bounds = program.bounds_by_pair()
    degree_pairs = tuple(bounds)
    a_ub, b_ub, incomparable, cover_pairs = program._dual_skeleton(degree_pairs)
    n_c, n_s, n_m = len(degree_pairs), len(incomparable), len(cover_pairs)
    costs = [bounds[p] for p in degree_pairs] + [0.0] * (n_s + n_m)
    value, lex_min_vertex = minimize_by_enumeration(
        costs, a_ub.tolist(), b_ub.tolist()
    )
    # The optimal face genuinely has several vertices — the degeneracy the
    # canonical rule resolves (otherwise this instance proves nothing).
    cost_vec = [Fraction(v).limit_denominator() for v in costs]
    optimal_vertices = [
        p
        for p in enumerate_vertices(a_ub.tolist(), b_ub.tolist())
        if sum(c * x for c, x in zip(cost_vec, p)) == value
    ]
    assert len(optimal_vertices) >= 2
    # The certified canonical solve lands on the lex-min optimal vertex.
    certificate = solve_exact_lp(costs, a_ub.tolist(), b_ub.tolist())
    assert certificate.x == tuple(lex_min_vertex)
    assert certificate.objective == value
    # Two independent full dual solves agree exactly, component for
    # component — the property CSMA's restart budget now relies on.
    first = program.solve_dual()
    lattice._lp_memo.clear()  # defeat the lattice memo: a genuine re-solve
    solver_mod._SOLVE_CACHE.clear()
    second = program.solve_dual()
    assert (first.c, first.s, first.m) == (second.c, second.s, second.m)


# ----------------------------------------------------------------------
# Satellite 2: the dual-marginal sign convention, pinned by hand
# ----------------------------------------------------------------------

def _hand_solved_backends():
    backends = ["exact"]
    if HAVE_SCIPY:
        backends += ["scipy", "both"]
    return backends


@pytest.mark.parametrize("backend", _hand_solved_backends())
def test_dual_sign_convention_hand_solved_2x2(backend):
    """min 3x + 5y  s.t.  x + y >= 2,  x <= y,  x,y >= 0.

    Unique optimum x = y = 1 (objective 8) with both rows binding; solving
    ``c = A_ub^T lambda`` by hand gives raw ``<=``-marginals
    ``lambda = (-4, -1)``, so the package convention (negated marginals,
    binding rows weigh non-negatively) must report ``duals_ub == [4, 1]``.
    A scipy upgrade that flips HiGHS marginal signs — or an exact-backend
    regression — lands here before it can flip the chain-bound duals
    (cf. repro/lp/solver.py).
    """
    with lp_backend_forced(backend):
        solution = solve_lp(
            [3.0, 5.0], a_ub=[[-1.0, -1.0], [1.0, -1.0]], b_ub=[-2.0, 0.0]
        )
    assert solution.objective == pytest.approx(8.0, abs=1e-9)
    assert list(solution.x) == pytest.approx([1.0, 1.0], abs=1e-9)
    assert list(solution.duals_ub) == pytest.approx([4.0, 1.0], abs=1e-9)
    if backend != "scipy":
        certificate = solution.certificate
        assert certificate is not None and certificate.verify()
        assert certificate.y_ub == (Fraction(4), Fraction(1))
        assert certificate.objective == 8


@pytest.mark.parametrize("backend", _hand_solved_backends())
def test_dual_sign_convention_equality_row(backend):
    """min x + y  s.t.  x + 2y == 4,  x >= 1/2: pins the ``==``-row sign
    (duals_eq is the negated HiGHS marginal) alongside the ``<=`` row."""
    with lp_backend_forced(backend):
        solution = solve_lp(
            [1.0, 1.0],
            a_ub=[[-1.0, 0.0]],
            b_ub=[-0.5],
            a_eq=[[1.0, 2.0]],
            b_eq=[4.0],
        )
    assert solution.objective == pytest.approx(2.25, abs=1e-9)
    assert list(solution.duals_eq) == pytest.approx([-0.5], abs=1e-9)
    assert list(solution.duals_ub) == pytest.approx([0.5], abs=1e-9)


# ----------------------------------------------------------------------
# Satellite 1: randomized CLLP / LLP / edge-cover differentials
# ----------------------------------------------------------------------

_SMALL_LATTICES = {
    "b3": boolean_algebra("xyz"),
    "m3": m3(),
    "n5": n5(),
    "fig5": fig5_lattice()[0],
}


def _random_llp(lattice_key: str, rng: random.Random):
    if lattice_key == "fig5":
        lattice, inputs = fig5_lattice()
    elif lattice_key == "b3":
        lattice = _SMALL_LATTICES["b3"]
        inputs = {
            "R": lattice.index(frozenset("xy")),
            "S": lattice.index(frozenset("yz")),
            "T": lattice.index(frozenset("xz")),
        }
    else:
        lattice = _SMALL_LATTICES[lattice_key]
        inputs = {f"R{a}": a for a in lattice.coatoms}
    import math

    logs = {name: math.log2(rng.randint(2, 512)) for name in inputs}
    return lattice, inputs, logs


@requires_scipy
@pytest.mark.parametrize("lattice_key", sorted(_SMALL_LATTICES))
@pytest.mark.parametrize("seed", range(6))
def test_llp_exact_matches_scipy(lattice_key, seed):
    lattice, inputs, logs = _random_llp(lattice_key, random.Random(seed))
    with lp_backend_forced("scipy"):
        scipy_value, _ = LatticeLinearProgram(lattice, inputs, logs).solve_primal()
    with lp_backend_forced("exact"):
        program = LatticeLinearProgram(lattice, inputs, logs)
        exact_value, _ = program.solve_primal()
        solution = program.solve()
    assert exact_value == pytest.approx(scipy_value, abs=1e-7)
    assert solution.certificate is not None and solution.certificate.verify()
    # The dual certificate (output inequality) re-verifies exactly.
    assert solution.inequality.verify_certificate()
    assert solution.inequality.verify_on(solution.h_raw)


@requires_scipy
@pytest.mark.parametrize("lattice_key", sorted(_SMALL_LATTICES))
@pytest.mark.parametrize("seed", range(4))
def test_cllp_exact_matches_scipy(lattice_key, seed):
    rng = random.Random(100 + seed)
    lattice, inputs, logs = _random_llp(lattice_key, rng)
    program = ConditionalLLP.from_cardinalities(lattice, inputs, logs)
    # Sprinkle random genuine degree constraints (X < Y).
    pairs = [
        (x, y)
        for x in range(lattice.n)
        for y in range(lattice.n)
        if lattice.lt(x, y)
    ]
    for x, y in rng.sample(pairs, k=min(2, len(pairs))):
        program = program.with_constraint(
            DegreeConstraint(x, y, rng.randint(0, 6))
        )
    with lp_backend_forced("scipy"):
        scipy_value, _ = program.solve_primal()
        scipy_dual = program.solve_dual()
    with lp_backend_forced("exact"):
        exact_value, _ = program.solve_primal()
        exact_dual = program.solve_dual()
        solution = program.solve()
    assert exact_value == pytest.approx(scipy_value, abs=1e-7)
    assert solution.certificate is not None and solution.certificate.verify()
    # Both duals are exactly feasible and objective-equivalent.
    bounds = program.bounds_by_pair()
    assert exact_dual.is_feasible() and scipy_dual.is_feasible()
    assert float(exact_dual.objective(bounds)) == pytest.approx(
        float(scipy_dual.objective(bounds)), abs=1e-6
    )


def _random_hypergraph(rng: random.Random) -> Hypergraph:
    n_vertices = rng.randint(2, 5)
    vertices = list(range(n_vertices))
    n_edges = rng.randint(2, 5)
    edges = {}
    for k in range(n_edges):
        size = rng.randint(1, n_vertices)
        edges[f"e{k}"] = rng.sample(vertices, size)
    return Hypergraph(vertices, edges)


@pytest.mark.parametrize("seed", range(30))
def test_edge_cover_vertices_match_reference_enumerator(seed):
    """``edge_cover_vertices`` (pruned enumerator) == the flat reference
    scan on the identical constraint system, vertex set for vertex set."""
    graph = _random_hypergraph(random.Random(seed))
    got = {
        tuple(point[name] for name in graph.edge_names)
        for point in graph.edge_cover_vertices()
    }
    if graph.isolated_vertices():
        assert got == set()
        return
    n = len(graph.edge_names)
    a_ub = [
        [-1 if v in graph.edges[name] else 0 for name in graph.edge_names]
        for v in graph.vertices
    ]
    b_ub = [-1] * len(graph.vertices)
    for i in range(n):
        row = [0] * n
        row[i] = 1
        a_ub.append(row)
        b_ub.append(1)
    expected = set(cross_check_vertices(a_ub, b_ub))
    assert got == expected
    # Every enumerated point is genuinely a fractional edge cover.
    for point in graph.edge_cover_vertices():
        assert graph.is_fractional_edge_cover(point)


@requires_scipy
@pytest.mark.parametrize("seed", range(20))
def test_edge_cover_number_exact_matches_scipy(seed):
    graph = _random_hypergraph(random.Random(500 + seed))
    if graph.isolated_vertices():
        return
    import math

    logs = {
        name: math.log2(random.Random(seed * 31 + k).randint(2, 128))
        for k, name in enumerate(graph.edge_names)
    }
    with lp_backend_forced("scipy"):
        scipy_value, scipy_weights = graph.fractional_edge_cover_number(logs)
    with lp_backend_forced("exact"):
        exact_value, exact_weights = graph.fractional_edge_cover_number(logs)
    assert float(exact_value) == pytest.approx(float(scipy_value), abs=1e-7)
    assert graph.is_fractional_edge_cover(exact_weights)
    assert graph.is_fractional_edge_cover(scipy_weights)


@pytest.mark.parametrize(
    "maker",
    [fig1_lattice, fig4_lattice, fig5_lattice, fig7_lattice, fig8_lattice,
     fig9_lattice],
    ids=["fig1", "fig4", "fig5", "fig7", "fig8", "fig9"],
)
def test_paper_lattice_lps_solve_exactly_with_certificates(maker):
    """Acceptance: every LLP/CLLP the paper-example lattices emit solves
    on the exact backend with a verified optimality certificate."""
    lattice, inputs = maker()
    logs = {name: 10.0 for name in inputs}
    with lp_backend_forced("exact"):
        llp = LatticeLinearProgram(lattice, inputs, logs).solve()
        assert llp.certificate is not None and llp.certificate.verify()
        assert llp.inequality.verify_certificate()
        cllp = ConditionalLLP.from_cardinalities(lattice, inputs, logs).solve()
        assert cllp.certificate is not None and cllp.certificate.verify()
        assert cllp.dual.is_feasible()
        assert cllp.objective == pytest.approx(llp.objective, abs=1e-9)


# ----------------------------------------------------------------------
# Satellite 3 support: the backend knob and its memos
# ----------------------------------------------------------------------

def test_backend_knob_validation():
    with lp_backend_forced("nonsense"):
        with pytest.raises(ValueError):
            lp_backend()
        with pytest.raises(ValueError):
            solve_lp([1.0], a_ub=[[1.0]], b_ub=[1.0])


def test_auto_always_resolves_exact():
    """``auto`` never routes to scipy: big programs (past the retired
    8-var/24-row cutoff) solve on the exact canonical backend too."""
    solver_mod._SOLVE_CACHE.clear()
    with lp_backend_forced("auto"):
        small = solve_lp([1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
        assert small.backend == "exact"
        assert small.certificate is not None
        n = 12  # > the old EXACT_MAX_VARS=8 cutoff
        big = solve_lp(
            [1.0] * n,
            a_ub=[[-1.0] * n] + [[1.0 if j == i else 0.0 for j in range(n)]
                                 for i in range(n)],
            b_ub=[-1.0] + [1.0] * n,
        )
        assert big.backend == "exact"
        assert big.certificate is not None and big.certificate.verify()


@requires_scipy
def test_cross_check_mode_returns_canonical_exact_vertex():
    """``both`` (and its alias ``scipy``) is cross-check mode: the caller
    gets the canonical exact solution — identical to a pure exact solve —
    and scipy runs alongside purely as a per-solve agreement assertion."""
    solver_mod._SOLVE_CACHE.clear()
    program = dict(a_ub=[[-1.0, -2.0]], b_ub=[-6.0])
    with lp_backend_forced("exact"):
        exact_solution = solve_lp([2.0, 3.0], **program)
    with lp_backend_forced("both"):
        both = solve_lp([2.0, 3.0], **program)
    with lp_backend_forced("scipy"):
        crossed = solve_lp([2.0, 3.0], **program)
    assert both.backend == "both"
    assert both.certificate is not None and both.certificate.verify()
    assert both.certificate == exact_solution.certificate
    assert list(both.x) == list(exact_solution.x)
    assert both.x_rational == exact_solution.x_rational
    assert both.objective_rational == both.certificate.objective
    assert crossed is both  # scipy and both resolve to one cross-check entry


def test_solve_cache_is_keyed_on_resolved_backend():
    """The byte memo keys on what the policy *resolves to*, so ``auto``
    and forced ``exact`` share one entry (they are the same solve)."""
    solver_mod._SOLVE_CACHE.clear()
    program = ([1.0, 1.0], [[-1.0, -1.0]], [-1.0])
    with lp_backend_forced("exact"):
        first = solve_lp(program[0], a_ub=program[1], b_ub=program[2])
        again = solve_lp(program[0], a_ub=program[1], b_ub=program[2])
    assert again is first  # memo hit within one policy
    with lp_backend_forced("auto"):
        auto_solution = solve_lp(program[0], a_ub=program[1], b_ub=program[2])
    assert auto_solution is first  # auto resolves to exact: same entry
    if HAVE_SCIPY:
        with lp_backend_forced("scipy"):
            crossed = solve_lp(program[0], a_ub=program[1], b_ub=program[2])
        # Cross-check mode re-solves once (distinct memo entry) but the
        # solution content is the same canonical vertex.
        assert crossed is not first
        assert crossed.backend == "both"
        assert crossed.x_rational == first.x_rational
        assert crossed.certificate == first.certificate


@requires_scipy
def test_lattice_memo_is_policy_free():
    """Canonical vertices made LLP/CLLP solutions backend-independent, so
    an in-process policy switch now *shares* the lattice memo entry
    (previously each policy solved and cached the program separately)."""
    lattice, inputs = fig5_lattice()
    logs = {name: 4.0 for name in inputs}
    with lp_backend_forced("scipy"):
        scipy_solution = LatticeLinearProgram(lattice, inputs, logs).solve()
    with lp_backend_forced("exact"):
        exact_solution = LatticeLinearProgram(lattice, inputs, logs).solve()
    assert exact_solution is scipy_solution  # one memo entry, all policies
    assert exact_solution.certificate is not None
    assert exact_solution.certificate.verify()


def test_lattice_memo_hits_across_auto_and_exact():
    """Regression (PR 8 satellite): ``auto`` and forced ``exact`` resolve
    to the same backend, so the same program must be solved once, not
    cached twice under two policy strings."""
    lattice, inputs = fig5_lattice()
    logs = {name: 6.0 for name in inputs}
    lattice._lp_memo.clear()
    solver_mod._SOLVE_CACHE.clear()
    with lp_backend_forced("auto"):
        auto_solution = LatticeLinearProgram(lattice, inputs, logs).solve()
    with lp_backend_forced("exact"):
        exact_solution = LatticeLinearProgram(lattice, inputs, logs).solve()
    assert exact_solution is auto_solution  # memo hit, no second solve
    assert auto_solution.certificate is not None
    # And at the byte-memo level too: exactly one solution object.
    with lp_backend_forced("auto"):
        first = solve_lp([1.0, 3.0], a_ub=[[-1.0, -1.0]], b_ub=[-2.0])
    with lp_backend_forced("exact"):
        second = solve_lp([1.0, 3.0], a_ub=[[-1.0, -1.0]], b_ub=[-2.0])
    assert second is first


# ----------------------------------------------------------------------
# Satellite 4: the importability split (scipy is optional)
# ----------------------------------------------------------------------

_NO_SCIPY_PROBE = textwrap.dedent(
    """
    import sys
    assert "scipy" not in sys.modules
    import repro.lp.solver as solver
    assert not solver.HAVE_SCIPY, "scipy import should have been blocked"
    # The full front door works on the exact backend alone.
    solution = solver.solve_lp(
        [3.0, 5.0], a_ub=[[-1.0, -1.0], [1.0, -1.0]], b_ub=[-2.0, 0.0]
    )
    assert solution.backend == "exact"
    assert solution.certificate is not None and solution.certificate.verify()
    assert solution.objective == 8.0
    assert [float(v) for v in solution.duals_ub] == [4.0, 1.0]
    # Forcing a scipy-dependent mode is a clear error, not a crash.
    import os
    for mode in ("scipy", "both"):
        os.environ["REPRO_LP_BACKEND"] = mode
        try:
            solver.solve_lp([1.0], a_ub=[[-1.0]], b_ub=[-1.0])
        except solver.LPError as exc:
            assert "scipy" in str(exc)
        else:
            raise AssertionError(f"{mode} mode should require scipy")
    # The lattice programs run end to end without scipy.
    os.environ["REPRO_LP_BACKEND"] = "auto"
    from repro.lattice.builders import fig5_lattice
    from repro.lp.llp import LatticeLinearProgram
    lattice, inputs = fig5_lattice()
    llp = LatticeLinearProgram(lattice, inputs, {n: 3.0 for n in inputs}).solve()
    assert llp.certificate is not None and llp.certificate.verify()
    print("NO-SCIPY-OK")
    """
)


def test_importability_split_without_scipy(tmp_path):
    """``repro.lp`` must import, solve and certify with scipy blocked —
    the exact backend is the dependency floor (setup.py's [scipy] extra
    is genuinely optional)."""
    blocker = tmp_path / "scipy.py"
    blocker.write_text('raise ImportError("scipy blocked for this test")\n')
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{tmp_path}:{REPO_ROOT / 'src'}"
    env.pop("REPRO_LP_BACKEND", None)
    proc = subprocess.run(
        [sys.executable, "-c", _NO_SCIPY_PROBE],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "NO-SCIPY-OK" in proc.stdout


def test_have_scipy_reflects_this_interpreter():
    try:
        import scipy  # noqa: F401

        assert HAVE_SCIPY
    except ImportError:  # pragma: no cover - no-scipy CI job
        assert not HAVE_SCIPY
