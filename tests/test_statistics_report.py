"""Statistics-driven constraints, the closure trick, reporting, drawing."""

import math
import random

import pytest

from repro.core.planner import Planner
from repro.core.report import analyze_query, classify_lattice, taxonomy_table
from repro.core.simple_keys import (
    all_guarded_simple_keys,
    closure_trick_join,
)
from repro.datagen.product import random_database
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.statistics import (
    data_aware_bound_log2,
    degree_profiles,
    derive_degree_constraints,
)
from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    fig9_lattice,
    lattice_from_query,
    m3_query_lattice,
)
from repro.lattice.draw import cover_edges, function_table, hasse_ascii, ranks
from repro.query.query import Atom, Query, paper_example_query, triangle_query


def simple_key_setup(seed=0):
    rng = random.Random(seed)
    query = Query(
        [
            Atom("R", ("x", "y")), Atom("S", ("y", "z")),
            Atom("T", ("z", "u")), Atom("K", ("u", "x")),
        ],
        FDSet([FD("y", "z")], "xyzu"),
    )
    mk = lambda: {(rng.randrange(8), rng.randrange(8)) for _ in range(30)}
    db = Database(
        [
            Relation("R", ("x", "y"), mk()),
            Relation("S", ("y", "z"), {(y, (3 * y + 1) % 8) for y in range(8)}),
            Relation("T", ("z", "u"), mk()),
            Relation("K", ("u", "x"), mk()),
        ],
        fds=query.fds,
    )
    return query, db


class TestDegreeStatistics:
    def test_profiles(self):
        rel = Relation("R", ("x", "y"), [(1, 1), (1, 2), (2, 1)])
        db = Database([rel])
        profiles = degree_profiles(db, "R")
        by_group = {p.group: p for p in profiles}
        assert by_group[("x",)].max_degree == 2
        assert by_group[("y",)].max_degree == 2
        assert by_group[("x",)].distinct_groups == 2

    def test_derive_constraints_key_detected(self):
        query, db = simple_key_setup()
        lattice, inputs = lattice_from_query(query)
        constraints = derive_degree_constraints(db, lattice, inputs)
        # y -> z is absorbed into the lattice (y+ = yz is S itself); the
        # *measured* functional fact that z is also a key of this S
        # instance surfaces as the constraint (z, yz) with bound 0.
        z_el = lattice.index(frozenset("z"))
        s_constraints = [
            dc for dc in constraints if dc.guard == "S" and dc.x == z_el
        ]
        assert s_constraints
        assert min(dc.bound for dc in s_constraints) == pytest.approx(0.0)

    def test_data_aware_bound_never_worse(self):
        query, db = simple_key_setup()
        lattice, inputs = lattice_from_query(query)
        plain, aware = data_aware_bound_log2(db, lattice, inputs)
        assert aware <= plain + 1e-9

    def test_data_aware_strictly_better_on_skew(self):
        query = triangle_query()
        # R has bounded out-degree 2.
        nodes = 50
        r = {(x, (x * 7 + k) % nodes) for x in range(nodes) for k in range(2)}
        rng = random.Random(0)
        s = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(100)}
        t = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(100)}
        db = Database(
            [
                Relation("R", ("x", "y"), r),
                Relation("S", ("y", "z"), s),
                Relation("T", ("z", "x"), t),
            ]
        )
        lattice, inputs = lattice_from_query(query)
        plain, aware = data_aware_bound_log2(db, lattice, inputs)
        assert aware < plain - 0.5


class TestClosureTrick:
    def test_detection(self):
        query, _ = simple_key_setup()
        assert all_guarded_simple_keys(query)
        assert not all_guarded_simple_keys(paper_example_query())

    def test_correctness(self):
        query, db = simple_key_setup()
        out, _ = closure_trick_join(query, db)
        ref, _ = binary_join_plan(query, db)
        assert set(out.project(ref.schema).tuples) == set(ref.tuples)

    def test_planner_routes_to_closure_trick(self):
        query, db = simple_key_setup()
        out, choice = Planner(query, db).run()
        assert choice.algorithm == "closure-trick"
        ref, _ = binary_join_plan(query, db)
        assert set(out.project(ref.schema).tuples) == set(ref.tuples)


class TestReport:
    def test_analyze_no_fds(self):
        query = triangle_query()
        analysis = analyze_query(query, {"R": 10, "S": 10, "T": 10})
        assert analysis.recommended == "generic-join"

    def test_analyze_fig1(self):
        analysis = analyze_query(
            paper_example_query(), {"R": 64, "S": 64, "T": 64}
        )
        assert analysis.recommended == "chain"
        assert analysis.classification.normal
        assert not analysis.classification.distributive
        assert analysis.classification.region() == "chain-tight"

    def test_classify_m3(self):
        lat, inputs = m3_query_lattice()
        c = classify_lattice(lat, inputs)
        assert not c.normal
        assert c.chain_tight
        assert c.region() == "chain-tight"
        assert c.glvv_log2 > c.coatomic_log2  # the non-normal gap

    def test_classify_fig9(self):
        lat, inputs = fig9_lattice()
        c = classify_lattice(lat, inputs, sm_search_steps=10)
        assert c.normal and not c.chain_tight and not c.sm_tight
        assert c.region() == "normal"

    def test_taxonomy_table(self):
        table = taxonomy_table({"m3": m3_query_lattice()})
        assert not table["m3"].normal


class TestDraw:
    def test_ranks(self):
        lat, _ = m3_query_lattice()
        r = ranks(lat)
        assert r[lat.bottom] == 0
        assert r[lat.top] == 2

    def test_hasse_contains_all_elements(self):
        lat, _ = fig9_lattice()
        text = hasse_ascii(lat)
        for i in range(lat.n):
            label = lat.label(i)
            assert str(label) in text

    def test_annotation(self):
        lat, _ = m3_query_lattice()
        text = hasse_ascii(lat, annotate=lambda i: "v")
        assert "x=v" in text

    def test_function_table(self):
        lat, _ = m3_query_lattice()
        text = function_table(lat, list(range(lat.n)), title="h*")
        assert "h*" in text
        assert text.count("\n") == lat.n

    def test_cover_edges(self):
        lat, _ = m3_query_lattice()
        edges = cover_edges(lat)
        assert ("x", "1") in edges
        assert ("0", "x") in edges
        assert len(edges) == 6
