"""Lattice extras: ideals, products, isomorphism, duals (repro.lattice.extras)."""

import pytest

from repro.fds.fd import FD, FDSet
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig9_lattice,
    lattice_from_fds,
    m3,
    n5,
)
from repro.lattice.extras import (
    are_isomorphic,
    dual_lattice,
    lattice_product,
    order_ideal_lattice,
    poset_of_simple_fds,
    self_dual,
    simple_fd_lattice_via_ideals,
)
from repro.lattice.properties import is_distributive


class TestOrderIdealLattice:
    def test_antichain_gives_boolean(self):
        lat = order_ideal_lattice(["a", "b"], [])
        assert are_isomorphic(lat, boolean_algebra("xy"))

    def test_chain_poset_gives_chain_lattice(self):
        lat = order_ideal_lattice(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert lat.n == 4  # ∅ ⊂ {a} ⊂ {a,b} ⊂ {a,b,c}
        assert all(len(c) <= 1 for c in lat.upper_covers)

    def test_always_distributive(self):
        # Birkhoff: any order ideal lattice is distributive.
        lat = order_ideal_lattice(
            ["a", "b", "c", "d"], [("a", "c"), ("b", "c"), ("b", "d")]
        )
        assert is_distributive(lat)


class TestSimpleFDPoset:
    def test_scc_collapse(self):
        fds = FDSet([FD("a", "b"), FD("b", "a"), FD("b", "c")], "abc")
        sccs, pairs = poset_of_simple_fds(fds)
        assert frozenset("ab") in sccs
        assert frozenset("c") in sccs

    def test_rejects_nonsimple(self):
        with pytest.raises(ValueError):
            poset_of_simple_fds(FDSet([FD("ab", "c")]))

    def test_prop_3_2_isomorphism(self):
        """The order-ideal route equals the closed-set route for simple fds."""
        for fds in [
            FDSet([FD("a", "b")], "abc"),
            FDSet([FD("a", "b"), FD("b", "c")], "abc"),
            FDSet([FD("a", "c"), FD("b", "c")], "abc"),
            FDSet([FD("a", "b"), FD("b", "a")], "abc"),
        ]:
            direct = lattice_from_fds(fds)
            via_ideals = simple_fd_lattice_via_ideals(fds)
            assert are_isomorphic(direct, via_ideals), fds


class TestProduct:
    def test_two_chains_make_grid(self):
        c2 = lattice_from_fds(FDSet((), "a"))  # 2-chain
        grid = lattice_product(c2, c2)
        assert are_isomorphic(grid, boolean_algebra("xy"))

    def test_product_size(self):
        p = lattice_product(m3(), n5())
        assert p.n == 25

    def test_product_of_distributive_is_distributive(self):
        a = boolean_algebra("x")
        b = boolean_algebra("yz")
        assert is_distributive(lattice_product(a, b))


class TestIsomorphism:
    def test_reflexive(self):
        lat = fig1_lattice()[0]
        assert are_isomorphic(lat, lat)

    def test_m3_not_n5(self):
        assert not are_isomorphic(m3(), n5())

    def test_different_sizes(self):
        assert not are_isomorphic(m3(), boolean_algebra("xy"))

    def test_same_size_different_structure(self):
        # Both 8 elements: boolean3 vs. a product of chains 2x4.
        c4 = order_ideal_lattice(["a", "b", "c"], [("a", "b"), ("b", "c")])
        c2 = lattice_from_fds(FDSet((), "a"))
        assert not are_isomorphic(boolean_algebra("xyz"), lattice_product(c2, c4))

    def test_fig9_vs_reconstruction(self):
        from repro.datagen.from_lattice import query_from_lattice
        from repro.lattice.builders import lattice_from_query

        lat, inputs = fig9_lattice()
        query, _ = query_from_lattice(lat, inputs)
        lat2, _ = lattice_from_query(query)
        assert are_isomorphic(lat, lat2)


class TestDuals:
    def test_boolean_self_dual(self):
        assert self_dual(boolean_algebra("xyz"))

    def test_m3_self_dual(self):
        assert self_dual(m3())

    def test_n5_self_dual(self):
        assert self_dual(n5())

    def test_dual_swaps_atoms_coatoms(self):
        lat = fig1_lattice()[0]
        dual = dual_lattice(lat)
        assert len(dual.atoms) == len(lat.coatoms)
        assert len(dual.coatoms) == len(lat.atoms)

    def test_fig1_not_self_dual(self):
        # 4 atoms vs 3 co-atoms.
        assert not self_dual(fig1_lattice()[0])
