"""Information-theoretic layer (repro.lattice.entropy)."""

import math

import pytest

from repro.lattice.builders import boolean_algebra
from repro.lattice.entropy import (
    Distribution,
    entropy_upper_bounds_output,
    output_distribution,
    section2_example,
)


class TestDistribution:
    def test_uniform_entropy(self):
        d = Distribution.uniform(("x",), [(1,), (2,), (3,), (4,)])
        assert d.entropy() == pytest.approx(2.0)

    def test_weighted(self):
        d = Distribution(("x",), {(0,): 0.5, (1,): 0.5})
        assert d.entropy() == pytest.approx(1.0)

    def test_probabilities_must_sum(self):
        with pytest.raises(ValueError):
            Distribution(("x",), {(0,): 0.7})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Distribution(("x",), {(0,): 1.5, (1,): -0.5})

    def test_duplicate_tuples_merge(self):
        d = Distribution.uniform(("x",), [(1,), (1,), (2,), (2,)])
        assert d.entropy() == pytest.approx(1.0)

    def test_marginal(self):
        d = Distribution.uniform(("x", "y"), [(0, 0), (0, 1), (1, 0)])
        marginal = d.marginal(("x",))
        assert marginal[(0,)] == pytest.approx(2 / 3)

    def test_deterministic_variable_zero_conditional(self):
        d = Distribution.uniform(
            ("x", "y"), [(0, 0), (1, 2), (2, 4)]
        )  # y = 2x
        assert d.conditional_entropy(("y",), ("x",)) == pytest.approx(0.0)
        assert d.satisfies_fd(("x",), ("y",))

    def test_independent_variables(self):
        d = Distribution.uniform(
            ("x", "y"), [(a, b) for a in (0, 1) for b in (0, 1)]
        )
        assert d.mutual_information(("x",), ("y",)) == pytest.approx(0.0)

    def test_xor_mutual_information(self):
        d = Distribution.uniform(
            ("x", "y", "z"), [(a, b, a ^ b) for a in (0, 1) for b in (0, 1)]
        )
        # Pairwise independent, jointly dependent.
        assert d.mutual_information(("x",), ("y",)) == pytest.approx(0.0)
        assert d.conditional_entropy(("z",), ("x", "y")) == pytest.approx(0.0)

    def test_entropy_profile_is_polymatroid(self):
        d = Distribution.uniform(
            ("x", "y", "z"),
            [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0), (1, 1, 1)],
        )
        assert d.is_polymatroid_profile()

    def test_on_lattice(self):
        b2 = boolean_algebra("xy")
        d = Distribution.uniform(("x", "y"), [(0, 0), (1, 1)])
        values = d.on_lattice(b2)
        assert values[b2.top] == pytest.approx(1.0)


class TestSection2Example:
    def test_joint_entropy_log5(self):
        d = section2_example()
        assert d.entropy() == pytest.approx(math.log2(5))

    def test_marginal_sizes_match_paper(self):
        """The displayed marginals: |Π_xy| = 4, |Π_yz| = 3, |Π_xz| = 4."""
        d = section2_example()
        assert len(d.marginal(("x", "y"))) == 4
        assert len(d.marginal(("y", "z"))) == 3
        assert len(d.marginal(("x", "z"))) == 4

    def test_cardinality_constraints(self):
        """H(xy) <= log|R| = log 4 etc., as stated in Sec. 2."""
        d = section2_example()
        assert d.entropy(("x", "y")) <= math.log2(4) + 1e-9
        assert d.entropy(("y", "z")) <= math.log2(4) + 1e-9
        assert d.entropy(("x", "z")) <= math.log2(4) + 1e-9

    def test_marginal_probabilities_match_figure(self):
        d = section2_example()
        xy = d.marginal(("x", "y"))
        assert xy[("a", 3)] == pytest.approx(2 / 5)
        assert xy[("b", 2)] == pytest.approx(1 / 5)
        yz = d.marginal(("y", "z"))
        assert yz[(3, "r")] == pytest.approx(2 / 5)
        assert yz[(2, "q")] == pytest.approx(2 / 5)

    def test_profile_polymatroid(self):
        assert section2_example().is_polymatroid_profile()


class TestOutputDistribution:
    def test_glvv_premises_on_triangle_output(self):
        # The output of the triangle on K4 satisfies the GLVV premises.
        edges = [(i, j) for i in range(4) for j in range(4) if i != j]
        output = [
            (x, y, z)
            for (x, y) in edges
            for (y2, z) in edges
            if y2 == y
            for (z2, x2) in edges
            if z2 == z and x2 == x
        ]
        assert entropy_upper_bounds_output(
            output,
            ("x", "y", "z"),
            {"R": ("x", "y"), "S": ("y", "z"), "T": ("z", "x")},
            {"R": len(edges), "S": len(edges), "T": len(edges)},
        )

    def test_uniform_construction(self):
        d = output_distribution([(1, 2), (3, 4)], ("x", "y"))
        assert d.entropy() == pytest.approx(1.0)
