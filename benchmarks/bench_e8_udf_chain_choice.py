"""E8 — Fig. 5 / Ex. 5.10: chain selection for pure-UDF queries.

Q :- R(x), S(y), z = f(x,y).  Maximal chains isolate a vertex (infinite
bound); Corollary 5.9's non-maximal chain 0̂ ≺ x ≺ 1̂ gives the tight N²,
and the Chain Algorithm attains it.
"""

import math

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.fds.fd import FD, FDSet
from repro.fds.udf import UDF
from repro.lattice.builders import fig5_lattice, lattice_from_query
from repro.lattice.chains import (
    all_maximal_chains,
    chain_bound,
    shearer_chain,
)
from repro.query.query import Atom, Query

from helpers import print_table


def udf_query_db(n: int):
    query = Query(
        [Atom("R", ("x",)), Atom("S", ("y",))],
        FDSet([FD("xy", "z")], "xyz"),
    )
    db = Database(
        [
            Relation("R", ("x",), [(i,) for i in range(n)]),
            Relation("S", ("y",), [(i,) for i in range(n)]),
        ],
        udfs=[UDF("f", ("x", "y"), "z", lambda x, y: x * y)],
    )
    return query, db


def test_maximal_chains_isolated(benchmark):
    lat, inputs = fig5_lattice()
    logs = {name: 1.0 for name in inputs}

    def survey():
        rows = []
        for chain in all_maximal_chains(lat):
            value, _ = chain_bound(chain, inputs, logs)
            rows.append([str(chain), "inf" if math.isinf(value) else f"{value:.2f}"])
        return rows

    rows = benchmark.pedantic(survey, rounds=1, iterations=1)
    print_table("E8 maximal chains on Fig. 5", ["chain", "bound"], rows)
    assert all(row[1] == "inf" for row in rows)  # every maximal chain fails


def test_shearer_chain_finite(benchmark):
    lat, inputs = fig5_lattice()
    logs = {name: 1.0 for name in inputs}
    chain = benchmark.pedantic(
        lambda: shearer_chain(lat, list(inputs.values())),
        rounds=1, iterations=1,
    )
    value, _ = chain_bound(chain, inputs, logs)
    print(f"\nE8 Cor. 5.9 chain: {chain}  bound N^{value:.2f} (paper: N²)")
    assert value == pytest.approx(2.0)
    assert len(chain) == 2  # non-maximal


def test_chain_algorithm_runs(benchmark):
    query, db = udf_query_db(24)
    lattice, inputs = lattice_from_query(query)
    out, stats = benchmark.pedantic(
        lambda: chain_algorithm(query, db, lattice, inputs),
        rounds=2, iterations=1,
    )
    assert len(out) == 24 * 24
    # Work is within a constant of N².
    assert stats.tuples_touched < 10 * 24 * 24
