"""E6 — Ex. 5.12: the chain bound is tight on M3 (a non-normal lattice).

Chain 0̂ ≺ x ≺ 1̂ gives the bound N², the Chain Algorithm computes the
mod-N instance within it, and the output attains it.
"""

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.datagen.worstcase import m3_modular_instance
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound

from helpers import measured_exponent, print_table


def test_chain_bound_two(benchmark):
    query, db = m3_modular_instance(8)
    lattice, inputs = lattice_from_query(query)
    logs = {name: 1.0 for name in inputs}
    value, chain, weights = benchmark.pedantic(
        lambda: best_chain_bound(lattice, inputs, logs),
        rounds=1, iterations=1,
    )
    print_table(
        "E6 M3 chain bound",
        ["chain", "bound", "paper"],
        [[str(chain), f"N^{value:.2f}", "N^2 (Ex. 5.12)"]],
    )
    assert value == pytest.approx(2.0)


def test_chain_algorithm_attains(benchmark):
    def series():
        rows = []
        for n in (8, 16, 32):
            query, db = m3_modular_instance(n)
            lattice, inputs = lattice_from_query(query)
            logs = {k: db.log_sizes()[k] for k in inputs}
            _, chain, _ = best_chain_bound(lattice, inputs, logs)
            out, stats = chain_algorithm(query, db, lattice, inputs, chain)
            assert len(out) == n * n
            rows.append([n, len(out), stats.tuples_touched])
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    print_table("E6 chain algorithm on mod-N", ["N", "|Q| = N²", "work"], rows)
    exponent = measured_exponent([r[0] for r in rows], [r[2] for r in rows])
    print(f"  measured work exponent {exponent:.2f} (budget 2.0)")
    assert exponent == pytest.approx(2.0, abs=0.35)
