"""Ablation A2 — CSMA's θ budget slack (Lemma 5.36 restarts).

θ controls the per-join budget 2^(OPT+θ).  Small θ triggers the restart
machinery: the branch re-solves its CLLP with the *measured* degree
constraints, whose optimum has provably dropped — on skewed data the
restarted plan can even do LESS work because it has learned the skew.
Large θ never restarts but tolerates budget overshoot.
"""

import random

import pytest

from repro.core.csma import csma
from repro.engine.binary_join import binary_join_plan
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.lattice.builders import lattice_from_query
from repro.query.query import triangle_query

from helpers import print_table


def skewed_triangle(n: int = 300, seed: int = 0):
    """One star node in S (half the tuples share y = 0)."""
    rng = random.Random(seed)
    nodes = 40
    s = {(0, z) for z in range(n // 2)} | {
        (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n // 2)
    }
    r = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    t = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    return Database(
        [
            Relation("R", ("x", "y"), r),
            Relation("S", ("y", "z"), s),
            Relation("T", ("z", "x"), t),
        ]
    )


def test_theta_sweep(benchmark):
    query = triangle_query()
    db = skewed_triangle()
    lattice, inputs = lattice_from_query(query)
    reference, _ = binary_join_plan(query, db)
    ref = set(reference.project(tuple(sorted(query.variables))).tuples)

    def sweep():
        rows = []
        for theta in (0.0, 1.0, 2.0, 4.0, 8.0):
            result = csma(query, db, lattice, inputs, theta_bits=theta)
            assert set(result.relation.tuples) == ref
            rows.append(
                [
                    theta,
                    result.stats.restarts,
                    result.stats.fallbacks,
                    result.stats.branches,
                    result.stats.tuples_touched,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "A2 CSMA θ sweep on a skewed triangle",
        ["θ bits", "restarts", "fallbacks", "branches", "work"],
        rows,
    )
    by_theta = {row[0]: row for row in rows}
    assert by_theta[0.0][1] >= 1        # tight budget forces a restart
    assert by_theta[8.0][1] == 0        # loose budget never restarts
    assert all(row[2] == 0 for row in rows)  # fallback never fires
    # The restart learns the skew: work at θ=0 beats the no-restart runs.
    assert by_theta[0.0][4] < by_theta[8.0][4]
