"""PR6 — serving and robustness: latency/throughput of the query service.

The earlier suites gate the *kernels* (tuples_touched, growth exponents,
plane equivalence); this one gates the *service* wrapped around them:

* **closed loop** — N client threads, think-time zero, retries with
  exponential backoff on retryable errors: the service-side view of a
  saturated tenant (p50/p99 latency, achieved QPS, zero failures when no
  faults are armed);
* **open loop** — Poisson arrivals at a fixed offered rate against a
  bounded admission queue: overload shows up as typed
  ``ServiceOverloaded`` rejections, never as queue collapse;
* **chaos** — the same closed loop with every fault site armed: the
  accounting identity (completed + timeouts + engine faults = admitted
  submissions) must balance exactly, and every finished request is either
  bit-identical to the fault-free answer or a clean typed error — the
  rates recorded here (rejection/degradation/failure) are what
  ``check_regression.py`` tracks warn-only across PRs.

The pytest entry point runs the smoke sizes (CI); ``run_serve_bench`` is
what ``benchmarks/run_all.py`` records into ``BENCH_<tag>.json`` under
the ``serve`` key.
"""

from __future__ import annotations

from repro.serve.faults import FaultInjector
from repro.serve.traffic import closed_loop, open_loop
from repro.serve.workloads import build_demo_service, demo_requests

#: (rounds, clients, open-loop rate) per level.  Smoke keeps CI under a
#: second; full is run_all's trajectory measurement.
LEVELS = {
    "smoke": {"rounds": 4, "clients": 4, "rate_qps": 200.0},
    "full": {"rounds": 30, "clients": 6, "rate_qps": 400.0},
}

CHAOS_SPEC = "worker:0.03,engine:0.05,alloc:0.03,timeout:0.03"


def _quiet() -> FaultInjector:
    return FaultInjector(seed=0)  # nothing armed, env-independent


def _chaos() -> FaultInjector:
    return FaultInjector.from_env(
        {"REPRO_FAULTS": CHAOS_SPEC, "REPRO_FAULTS_SEED": "7"}
    )


def _run_closed(level: dict, faults: FaultInjector) -> dict:
    with build_demo_service(
        tenants=2, max_workers=4, queue_depth=8, faults=faults
    ) as service:
        requests = demo_requests(tenants=2, rounds=level["rounds"], seed=0)
        report = closed_loop(
            service, requests, clients=level["clients"], seed=0
        )
        report["service"] = service.metrics()
    return report


def _run_open(level: dict) -> dict:
    with build_demo_service(
        tenants=2, max_workers=4, queue_depth=4, faults=_quiet()
    ) as service:
        requests = demo_requests(tenants=2, rounds=level["rounds"], seed=1)
        report = open_loop(
            service, requests, rate_qps=level["rate_qps"], seed=1
        )
        report["service"] = service.metrics()
    return report


def accounting_balances(service_counters: dict) -> bool:
    """completed + timeouts + engine_faults + admission rejections account
    for every submission the bounded queue accepted."""
    c = service_counters
    return (
        c["completed"]
        + c["timeouts"]
        + c["engine_faults"]
        + c["rejected_admission"]
        == c["submitted"]
    )


def run_serve_bench(level: str = "smoke") -> dict:
    cfg = LEVELS[level]
    closed = _run_closed(cfg, _quiet())
    opened = _run_open(cfg)
    chaos = _run_closed(cfg, _chaos())
    return {
        "level": level,
        "closed_loop": closed,
        "open_loop": opened,
        "chaos": chaos,
    }


# ----------------------------------------------------------------------
# pytest entry points (the smoke gate CI runs via run_bench_files)
# ----------------------------------------------------------------------
def test_closed_loop_fault_free_is_clean():
    report = _run_closed(LEVELS["smoke"], _quiet())
    assert report["requests"] > 0
    assert report["ok"] == report["requests"]
    assert report["failure_rate"] == 0.0
    assert report["degradation_rate"] == 0.0
    assert report["p99_ms"] >= report["p50_ms"] > 0.0
    assert accounting_balances(report["service"])


def test_open_loop_overload_is_typed_rejection_only():
    report = _run_open(LEVELS["smoke"])
    # Whatever the offered rate did, nothing fell outside the taxonomy:
    # every request is completed, admission-rejected, or overload-rejected.
    assert report["ok"] + report["rejected_overload"] == report["requests"]
    assert report["timeouts"] == 0 and report["engine_faults"] == 0
    assert accounting_balances(report["service"])


def test_chaos_accounting_balances_exactly():
    report = _run_closed(LEVELS["smoke"], _chaos())
    counters = report["service"]
    assert accounting_balances(counters)
    assert sum(counters["faults_fired"].values()) > 0
    # Retries recovered some retryable failures: clients still finished
    # work under the storm.
    assert report["ok"] > 0


if __name__ == "__main__":
    import json

    print(json.dumps(run_serve_bench(level="full"), indent=2, sort_keys=True))
