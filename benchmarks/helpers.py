"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures/claims: it
prints the rows (paper value vs. measured) and asserts the *shape* — who
wins, by what exponent, where crossovers fall — not absolute timings.
"""

from __future__ import annotations

import math


def measured_exponent(sizes: list[int], works: list[int]) -> float:
    """Least-squares slope of log(work) vs log(size): the growth exponent."""
    logs_n = [math.log(s) for s in sizes]
    logs_w = [math.log(max(1, w)) for w in works]
    n = len(sizes)
    mean_n = sum(logs_n) / n
    mean_w = sum(logs_w) / n
    num = sum((a - mean_n) * (b - mean_w) for a, b in zip(logs_n, logs_w))
    den = sum((a - mean_n) ** 2 for a in logs_n)
    return num / den


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(f"\n== {title}")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
