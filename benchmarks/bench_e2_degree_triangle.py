"""E2 — Eq. (2) / Appendix A: the degree-bounded triangle.

Paper claim: with out-degrees <= d1 and in-degrees <= d2 on R, the output
drops from N^{3/2} to min(N^{3/2}, N·d1, N·d2); the CLLP captures it and
CSMA runs with the constraint.
"""

import math
import random

import pytest

from repro.core.csma import csma
from repro.engine.database import Database
from repro.engine.generic_join import generic_join
from repro.engine.relation import Relation
from repro.lattice.builders import lattice_from_query
from repro.lp.cllp import ConditionalLLP, DegreeConstraint
from repro.query.query import triangle_query

from helpers import print_table


def bounded_db(n: int, d1: int, seed: int = 0):
    rng = random.Random(seed)
    nodes = max(2, n // d1)
    r = {(x, (x * 13 + 5 * k) % nodes) for x in range(nodes) for k in range(d1)}
    s = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    t = {(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(n)}
    return Database(
        [
            Relation("R", ("x", "y"), r),
            Relation("S", ("y", "z"), s),
            Relation("T", ("z", "x"), t),
        ]
    )


def test_bound_table(benchmark):
    """min(N^{3/2}, N·d1) over a d-sweep at fixed N."""
    query = triangle_query()
    lattice, inputs = lattice_from_query(query)
    n_log = 10.0  # N = 1024

    def sweep():
        rows = []
        for log_d in (0.0, 2.0, 4.0, 6.0, 8.0):
            logs = {name: n_log for name in inputs}
            x = lattice.index(frozenset("x"))
            xy = lattice.index(frozenset("xy"))
            program = ConditionalLLP.from_cardinalities(
                lattice, inputs, logs
            ).with_constraint(DegreeConstraint(x, xy, log_d))
            value, _ = program.solve_primal()
            rows.append([2 ** log_d, f"{value:.2f}",
                         f"{min(1.5 * n_log, n_log + log_d):.2f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E2 CLLP bound vs d (N = 2^10)",
                ["d1", "cllp log2", "paper min(1.5n, n+log d)"], rows)
    for row in rows:
        assert float(row[1]) == pytest.approx(float(row[2]), abs=1e-6)


def test_csma_exploits_degree(benchmark):
    query = triangle_query()
    db = bounded_db(600, 3)
    lattice, inputs = lattice_from_query(query)
    x = lattice.index(frozenset("x"))
    xy = lattice.index(frozenset("xy"))
    d = db["R"].max_degree(("x",))
    constraint = DegreeConstraint(x, xy, math.log2(d), guard="R")
    result = benchmark.pedantic(
        lambda: csma(query, db, lattice, inputs,
                     extra_degree_constraints=[constraint]),
        rounds=2, iterations=1,
    )
    reference, _ = generic_join(query, db)
    assert set(result.relation.tuples) == set(
        reference.project(result.relation.schema).tuples
    )
    assert result.stats.fallbacks == 0
    budget = 2.0 ** result.stats.budget_log2
    assert result.stats.tuples_touched < 40 * budget
