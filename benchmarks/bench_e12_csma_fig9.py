"""E12 — Fig. 9 / Ex. 5.31 / Sec. 5.3: CSMA's motivating example.

* The inequality h(M)+h(N)+h(O) >= 2h(1̂) holds but admits NO SM-proof.
* The chain bound is N², GLVV is N^{3/2}.
* CSMA evaluates the worst-case instance within the GLVV budget shape.
"""

from fractions import Fraction

import pytest

from repro.core.csma import csma
from repro.core.proofs import sm_proof_exists
from repro.datagen.from_lattice import worst_case_database
from repro.engine.binary_join import binary_join_plan
from repro.lattice.builders import fig9_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.llp import glvv_bound_log2

from helpers import measured_exponent, print_table


def setup(scale):
    lat0, inp0 = fig9_lattice()
    query, db, h = worst_case_database(lat0, inp0, scale=scale)
    lattice, inputs = lattice_from_query(query)
    return query, db, lattice, inputs


def test_no_sm_proof_but_bounds_gap(benchmark):
    lat, inputs = fig9_lattice()
    logs = {name: 1.0 for name in inputs}

    def compute():
        glvv = glvv_bound_log2(lat, inputs, logs)
        chain, _, _ = best_chain_bound(lat, inputs, logs)
        weights = {name: Fraction(1, 2) for name in inputs}
        return glvv, chain, sm_proof_exists(lat, weights, inputs)

    glvv, chain, has_sm = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12 Fig. 9 landscape",
        ["quantity", "value", "paper"],
        [
            ["GLVV", f"N^{glvv:.2f}", "N^{3/2}"],
            ["best chain", f"N^{chain:.2f}", "N² (suboptimal)"],
            ["SM-proof exists", has_sm, "False (Ex. 5.31)"],
        ],
    )
    assert glvv == pytest.approx(1.5)
    assert chain == pytest.approx(2.0)
    assert not has_sm


def test_csma_correct(benchmark):
    query, db, lattice, inputs = setup(scale=3)
    result = benchmark.pedantic(
        lambda: csma(query, db, lattice, inputs), rounds=2, iterations=1
    )
    reference, _ = binary_join_plan(query, db)
    assert set(result.relation.tuples) == set(
        reference.project(result.relation.schema).tuples
    )
    assert result.stats.fallbacks == 0
    print("\nE12 CSM proof sequence executed:")
    for rule in result.stats.rules:
        print(f"  {rule}")


def test_csma_work_shape(benchmark):
    def series():
        rows = []
        for scale in (2, 3, 4, 5):
            query, db, lattice, inputs = setup(scale)
            result = csma(query, db, lattice, inputs)
            n = len(db["M"])
            assert len(result.relation) == scale ** 3  # N^{3/2}
            rows.append([n, len(result.relation),
                         result.stats.tuples_touched])
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    print_table("E12 CSMA on Fig. 9 worst case",
                ["N", "|Q| = N^1.5", "work"], rows)
    exponent = measured_exponent([r[0] for r in rows], [r[2] for r in rows])
    print(f"  measured exponent {exponent:.2f} "
          "(GLVV budget 1.5 + polylog, chain bound would be 2.0)")
    assert exponent < 1.9
