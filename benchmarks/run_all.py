"""Run the full bench suite and emit a BENCH_<tag>.json trajectory file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_all.py            # → BENCH_PR2.json
    PYTHONPATH=src python benchmarks/run_all.py --tag PR3  # → BENCH_PR3.json
    PYTHONPATH=src python benchmarks/run_all.py --quick    # E16 metrics only

After emitting a trajectory, compare it against the committed baseline
with ``python benchmarks/check_regression.py BENCH_<tag>.json`` (CI runs
this on every push: fail on exponent / tuples_touched drift, warn on
wall-clock regression).

The trajectory file records, per PR, everything needed to compare engine
generations honestly:

* ``benches`` — wall-clock per bench_*.py file (the paper-claim suite,
  each asserting shapes, not absolute timings);
* ``e16`` — the flagship scaling sweep: per-workload ``tuples_touched``
  (the machine-independent work measure, which the positional kernel must
  keep bit-identical across refactors) plus measured growth exponents and
  the sweep wall-clock (which refactors should shrink);
* ``e17`` — the large-frontier suite (``bench_e17_large_frontier``):
  per-workload ``tuples_touched`` and result digests (bit-identical
  across the decoded, encoded, ndarray-off, and forced-shard planes,
  asserted in-run), every plane's wall-clock, the encoded-plane and
  shard speedups, peak RSS, and the shard configuration (workers,
  cpu_count, env mode — the ``shard`` sub-object).  ``--quick`` runs
  the smoke sizes only; the full ≥1M-row sweep runs otherwise;
* ``host`` — the machine's parallelism (``cpu_count`` and the resolved
  shard worker count), so wall-clock comparisons between trajectories
  from different machines can be qualified by ``check_regression.py``;
* ``serve`` — the PR6 serving suite (``bench_pr6_serve``): closed-loop
  latency percentiles and QPS, open-loop overload behavior, and the
  chaos run's rejection/degradation/failure rates.  Compared warn-only
  by ``check_regression.py`` (latency and rates are machine-dependent).

See PERFORMANCE.md for how to read tuples_touched vs wall-clock.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(REPO_ROOT / "src"))


def run_bench_files() -> dict[str, dict]:
    """Each bench file in its own pytest run, timed."""
    results: dict[str, dict] = {}
    for bench in sorted(BENCH_DIR.glob("bench_*.py")):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench), "-q", "--no-header"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={
                **dict(__import__("os").environ),
                "PYTHONPATH": f"{REPO_ROOT / 'src'}:{BENCH_DIR}",
            },
        )
        results[bench.stem] = {
            "wall_clock_s": round(time.perf_counter() - start, 4),
            "passed": proc.returncode == 0,
        }
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  {bench.stem:<28} {results[bench.stem]['wall_clock_s']:7.3f}s  {status}")
    return results


def run_e16_sweep() -> dict:
    """The E16 scaling sweep, natively, with full work accounting."""
    from repro.core.chain_algorithm import chain_algorithm
    from repro.core.csma import csma
    from repro.core.sma import submodularity_algorithm
    from repro.datagen.from_lattice import worst_case_database
    from repro.datagen.worstcase import fig4_instance, skew_instance_example_5_8
    from repro.engine.binary_join import binary_join_plan
    from repro.engine.generic_join import generic_join
    from repro.lattice.builders import fig9_lattice, lattice_from_query
    from repro.lattice.chains import best_chain_bound

    from helpers import measured_exponent

    workloads: dict[str, dict] = {}
    start = time.perf_counter()

    sizes, ca_w, gj_w, bj_w = [], [], [], []
    for n in (64, 128, 256):
        query, db = skew_instance_example_5_8(n)
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}
        _, chain, _ = best_chain_bound(lattice, inputs, logs)
        _, st = chain_algorithm(query, db, lattice, inputs, chain)
        _, gj = generic_join(
            query, db, order=("y", "z", "x", "u"), fd_aware=True
        )
        _, bj = binary_join_plan(query, db, order=["R", "S", "T"])
        sizes.append(n)
        ca_w.append(st.tuples_touched)
        gj_w.append(gj.tuples_touched)
        bj_w.append(bj.tuples_touched)
        workloads[f"skew_n{n}"] = {
            "chain": st.tuples_touched,
            "generic": gj.tuples_touched,
            "binary": bj.tuples_touched,
        }

    fig4_sizes, fig4_w = [], []
    for n in (27, 125, 343):
        query, db = fig4_instance(n)
        lattice, inputs = lattice_from_query(query)
        _, st = submodularity_algorithm(query, db, lattice, inputs)
        fig4_sizes.append(len(db["R"]))
        fig4_w.append(st.tuples_touched)
        workloads[f"fig4_n{n}"] = {"sma": st.tuples_touched}

    fig9_sizes, fig9_w = [], []
    for scale in (2, 3, 4, 5):
        lat0, inp0 = fig9_lattice()
        query, db, _ = worst_case_database(lat0, inp0, scale=scale)
        lattice, inputs = lattice_from_query(query)
        result = csma(query, db, lattice, inputs)
        fig9_sizes.append(len(db["M"]))
        fig9_w.append(result.stats.tuples_touched)
        workloads[f"fig9_scale{scale}"] = {
            "csma": result.stats.tuples_touched,
            "branches": result.stats.branches,
            "restarts": result.stats.restarts,
        }

    wall = time.perf_counter() - start
    exponents = {
        "chain @ skew": measured_exponent(sizes, ca_w),
        "generic @ skew": measured_exponent(sizes, gj_w),
        "binary @ skew": measured_exponent(sizes, bj_w),
        "sma @ fig4": measured_exponent(fig4_sizes, fig4_w),
        "csma @ fig9": measured_exponent(fig9_sizes, fig9_w),
    }
    return {
        "wall_clock_s": round(wall, 4),
        "tuples_touched": workloads,
        "exponents": {k: round(v, 4) for k, v in exponents.items()},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tag", default="PR2", help="trajectory tag (file suffix)")
    parser.add_argument(
        "--out", default=None, help="output path (default BENCH_<tag>.json)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the per-file pytest runs; emit the E16 metrics and the "
        "E17 smoke sizes only",
    )
    parser.add_argument(
        "--e17-only",
        action="store_true",
        help="emit only the E17 section at smoke sizes (the CI "
        "ndarray-on/off and REPRO_SHARD-on/off cross gates each compare "
        "two such files with check_regression.py --strict-e17)",
    )
    args = parser.parse_args()

    import os

    from repro.engine import shard

    payload = {
        "tag": args.tag,
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Host parallelism, recorded at the top level so that
        # check_regression.py can qualify wall-clock comparisons between
        # trajectories taken on differently-provisioned machines (e.g. the
        # E17 shard floor needs ≥4 cores to be expressible at all).
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "shard_workers": shard.active_workers(),
        },
    }
    if not args.quick and not args.e17_only:
        print("bench suite:")
        payload["benches"] = run_bench_files()
    if not args.e17_only:
        print("e16 sweep:")
        payload["e16"] = run_e16_sweep()
        print(
            f"  wall {payload['e16']['wall_clock_s']}s, exponents "
            f"{payload['e16']['exponents']}"
        )
    from bench_e17_large_frontier import peak_rss_kb, run_sweep as run_e17_sweep

    level = "smoke" if args.quick or args.e17_only else "full"
    print(f"e17 sweep ({level}):")
    payload["e17"] = run_e17_sweep(level=level)
    if not args.e17_only:
        from bench_pr6_serve import run_serve_bench

        print(f"serve bench ({level}):")
        payload["serve"] = run_serve_bench(level=level)
        closed = payload["serve"]["closed_loop"]
        chaos = payload["serve"]["chaos"]
        print(
            f"  closed-loop p50 {closed['p50_ms']}ms p99 {closed['p99_ms']}ms "
            f"({closed['qps']} qps); chaos failure rate "
            f"{chaos['failure_rate']}"
        )
    payload["peak_rss_kb"] = peak_rss_kb()

    out = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{args.tag}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    failed = [
        name
        for name, row in payload.get("benches", {}).items()
        if not row["passed"]
    ]
    if failed:
        print(f"FAILED benches: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
