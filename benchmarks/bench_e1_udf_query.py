"""E1 — Eq. (1) / Fig. 1 / Ex. 5.5-5.8: the UDF query.

Paper claims regenerated:
* GLVV bound of query (1) is N^{3/2} while AGM is N².
* The Chain Algorithm runs within Õ(N^{3/2}); on the skew instance every
  FD-oblivious WCOJ (and any binary plan) does Ω(N²) work.
"""

import pytest

from repro.core.bounds import compute_bounds
from repro.core.chain_algorithm import chain_algorithm
from repro.datagen.worstcase import (
    grid_instance_example_5_5,
    skew_instance_example_5_8,
)
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound

from helpers import measured_exponent, print_table

N = 256


@pytest.fixture(scope="module")
def skew():
    query, db = skew_instance_example_5_8(N)
    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}
    _, chain, _ = best_chain_bound(lattice, inputs, logs)
    return query, db, lattice, inputs, chain


def test_bounds_table(benchmark):
    query, db = grid_instance_example_5_5(N)
    report = benchmark(compute_bounds, query, db.sizes())
    n = len(db["R"])
    print_table(
        "E1 bounds for query (1), N = %d" % n,
        ["bound", "log2", "tuples", "paper"],
        [
            ["agm", f"{report.agm:.2f}", f"{2**report.agm:.0f}", "N^2"],
            ["glvv", f"{report.glvv:.2f}", f"{2**report.glvv:.0f}", "N^1.5"],
            ["chain", f"{report.chain:.2f}", f"{2**report.chain:.0f}", "N^1.5"],
        ],
    )
    assert report.glvv == pytest.approx(1.5 * report.agm / 2.0, rel=0.01)


def test_chain_algorithm_work(benchmark, skew):
    query, db, lattice, inputs, chain = skew
    out, stats = benchmark.pedantic(
        lambda: chain_algorithm(query, db, lattice, inputs, chain),
        rounds=3, iterations=1,
    )
    assert stats.tuples_touched < N ** 1.5 * 4


def test_generic_join_work(benchmark, skew):
    query, db, *_ = skew
    out, stats = benchmark.pedantic(
        lambda: generic_join(query, db, order=("y", "z", "x", "u"),
                             fd_aware=True),
        rounds=3, iterations=1,
    )
    assert stats.tuples_touched > (N // 2) ** 2 / 2


def test_binary_plan_work(benchmark, skew):
    query, db, *_ = skew
    out, stats = benchmark.pedantic(
        lambda: binary_join_plan(query, db, order=["R", "S", "T"]),
        rounds=3, iterations=1,
    )
    assert stats.intermediate_peak > (N // 2) ** 2 / 2


def test_separation_series(benchmark):
    """The headline series: work of CA vs generic join over N."""

    def series():
        rows = []
        for n in (64, 128, 256):
            query, db = skew_instance_example_5_8(n)
            lattice, inputs = lattice_from_query(query)
            logs = {k: db.log_sizes()[k] for k in inputs}
            _, chain, _ = best_chain_bound(lattice, inputs, logs)
            _, ca = chain_algorithm(query, db, lattice, inputs, chain)
            _, gj = generic_join(query, db, order=("y", "z", "x", "u"),
                                 fd_aware=True)
            rows.append([n, ca.tuples_touched, gj.tuples_touched])
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    print_table("E1 separation (work)", ["N", "chain-alg", "generic-join"], rows)
    ns = [r[0] for r in rows]
    ca_exp = measured_exponent(ns, [r[1] for r in rows])
    gj_exp = measured_exponent(ns, [r[2] for r in rows])
    print(f"  measured exponents: chain-alg {ca_exp:.2f}, generic {gj_exp:.2f}")
    assert ca_exp < 1.5
    assert gj_exp > 1.7
