"""E16 — Thms. 5.7 / 5.28 / 5.37: runtime-shape sweep across algorithms.

Measured growth exponents of every algorithm on its flagship workload,
compared to the analytic budget.  The key shapes:

* Chain Algorithm ~N on the skew instance (output-linear) vs. baselines ~N².
* SMA ~N^{4/3} on Fig. 4 vs. the chain budget N^{3/2}.
* CSMA ~N^{3/2}·polylog on Fig. 9 vs. the chain budget N².
"""

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.sma import submodularity_algorithm
from repro.datagen.from_lattice import worst_case_database
from repro.datagen.worstcase import fig4_instance, skew_instance_example_5_8
from repro.engine.binary_join import binary_join_plan
from repro.engine.generic_join import generic_join
from repro.lattice.builders import fig9_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound

from helpers import measured_exponent, print_table


def test_scaling_summary(benchmark):
    def sweep():
        summary = []

        # Chain Algorithm + baselines on the skew instance.
        sizes, ca_w, gj_w, bj_w = [], [], [], []
        for n in (64, 128, 256):
            query, db = skew_instance_example_5_8(n)
            lattice, inputs = lattice_from_query(query)
            logs = {k: db.log_sizes()[k] for k in inputs}
            _, chain, _ = best_chain_bound(lattice, inputs, logs)
            _, st = chain_algorithm(query, db, lattice, inputs, chain)
            _, gj = generic_join(query, db, order=("y", "z", "x", "u"),
                                 fd_aware=True)
            _, bj = binary_join_plan(query, db, order=["R", "S", "T"])
            sizes.append(n)
            ca_w.append(st.tuples_touched)
            gj_w.append(gj.tuples_touched)
            bj_w.append(bj.tuples_touched)
        summary.append(["chain-alg @ skew", measured_exponent(sizes, ca_w), "<= 1.5"])
        summary.append(["generic @ skew", measured_exponent(sizes, gj_w), "~2.0"])
        summary.append(["binary @ skew", measured_exponent(sizes, bj_w), "~2.0"])

        # SMA on Fig. 4.
        sizes, works = [], []
        for n in (27, 125, 343):
            query, db = fig4_instance(n)
            lattice, inputs = lattice_from_query(query)
            _, st = submodularity_algorithm(query, db, lattice, inputs)
            sizes.append(len(db["R"]))
            works.append(st.tuples_touched)
        summary.append(["sma @ fig4", measured_exponent(sizes, works), "~4/3"])

        # CSMA on Fig. 9.
        sizes, works = [], []
        for scale in (2, 3, 4, 5):
            lat0, inp0 = fig9_lattice()
            query, db, _ = worst_case_database(lat0, inp0, scale=scale)
            lattice, inputs = lattice_from_query(query)
            result = csma(query, db, lattice, inputs)
            sizes.append(len(db["M"]))
            works.append(result.stats.tuples_touched)
        summary.append(["csma @ fig9", measured_exponent(sizes, works),
                        "~1.5 (+polylog)"])
        return summary

    summary = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E16 measured growth exponents",
        ["algorithm @ workload", "exponent", "analytic budget"],
        [[name, f"{exp:.2f}", budget] for name, exp, budget in summary],
    )
    by_name = {name: exp for name, exp, _ in summary}
    assert by_name["chain-alg @ skew"] < 1.5
    assert by_name["generic @ skew"] > 1.7
    assert by_name["binary @ skew"] > 1.7
    assert by_name["sma @ fig4"] < 1.45
    assert by_name["csma @ fig9"] < 1.9
