"""E9 — Fig. 6 / Thm. 5.14 / Ex. 5.16: the tightness condition (15).

The Fig. 1 lattice with chain 0̂ ≺ y ≺ yz ≺ 1̂ satisfies condition (15)
even though the lattice is not distributive — the chain bound is tight
there, witnessed by an actual product-style materialization.
"""

import pytest

from repro.lattice.builders import boolean_algebra, fig1_lattice, m3_query_lattice
from repro.lattice.chains import (
    Chain,
    all_maximal_chains,
    chain_tight_polymatroid,
    condition_15_holds,
)
from repro.lattice.polymatroid import LatticeFunction
from repro.lattice.properties import is_distributive
from repro.lp.llp import LatticeLinearProgram

from helpers import print_table


def fig1_chain():
    lat, inputs = fig1_lattice()
    chain = Chain(
        lat,
        (
            lat.bottom,
            lat.index(frozenset("y")),
            lat.index(frozenset("yz")),
            lat.top,
        ),
    )
    return lat, inputs, chain


def test_condition_15_fig1(benchmark):
    lat, inputs, chain = fig1_chain()
    holds = benchmark.pedantic(
        lambda: condition_15_holds(chain), rounds=1, iterations=1
    )
    print_table(
        "E9 condition (15)",
        ["lattice", "distributive", "chain", "cond. (15)"],
        [["fig1", is_distributive(lat), str(chain), holds]],
    )
    assert holds
    assert not is_distributive(lat)  # strictly beyond Cor. 5.15


def test_distributive_always_satisfies(benchmark):
    lat = boolean_algebra("xyz")

    def check():
        return all(
            condition_15_holds(chain) for chain in all_maximal_chains(lat)
        )

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_tight_polymatroid_materializable(benchmark):
    """Thm. 5.14's u is optimal and <= h* — the tightness witness."""
    lat, inputs, chain = fig1_chain()
    program = LatticeLinearProgram(lat, inputs, {n: 1.0 for n in inputs})

    def compute():
        _, h_raw = program.solve_primal()
        h_star = h_raw.lovasz_monotonization()
        u = chain_tight_polymatroid(chain, h_star.values)
        return h_star, LatticeFunction(lat, u)

    h_star, hu = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert hu.is_polymatroid()
    assert hu.values[lat.top] == h_star.values[lat.top]
    assert hu.restrict_leq(h_star)
    # Doubled, u is integral & normal: materializable by Lemma 4.5.
    doubled = hu.scale(2)
    assert doubled.is_normal()
