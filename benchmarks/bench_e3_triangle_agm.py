"""E3 — Eq. (4) / Thm. 2.1: the triangle AGM bound.

Regenerates AGM(Q) = min(sqrt(N_R N_S N_T), N_R N_S, N_R N_T, N_S N_T)
over a cardinality sweep, and verifies the product-instance lower bound
and generic join's worst-case optimality shape.
"""

import math

import pytest

from repro.core.bounds import agm_bound_log2
from repro.datagen.product import product_database, random_database
from repro.engine.generic_join import generic_join
from repro.query.query import triangle_query

from helpers import measured_exponent, print_table


def eq4(r: int, s: int, t: int) -> float:
    return min(
        0.5 * (math.log2(r) + math.log2(s) + math.log2(t)),
        math.log2(r) + math.log2(s),
        math.log2(r) + math.log2(t),
        math.log2(s) + math.log2(t),
    )


def test_agm_table(benchmark):
    query = triangle_query()
    profiles = [
        (64, 64, 64), (16, 64, 256), (4, 4, 4096), (1024, 2, 2),
    ]

    def table():
        return [
            [r, s, t, f"{agm_bound_log2(query, {'R': r, 'S': s, 'T': t}):.2f}",
             f"{eq4(r, s, t):.2f}"]
            for r, s, t in profiles
        ]

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print_table("E3 AGM bound (Eq. 4)", ["R", "S", "T", "LP", "Eq.(4)"], rows)
    for row in rows:
        assert float(row[3]) == pytest.approx(float(row[4]), abs=1e-6)


def test_product_instance_attains_bound(benchmark):
    query = triangle_query()
    db = product_database(query, {"x": 8, "y": 8, "z": 8})
    out, _ = benchmark.pedantic(
        lambda: generic_join(query, db), rounds=2, iterations=1
    )
    agm = agm_bound_log2(query, db.sizes())
    assert len(out) == pytest.approx(2 ** agm, rel=0.01)


def test_generic_join_worst_case_shape(benchmark):
    """Generic join's work on random instances grows ~N^{3/2} at worst."""
    query = triangle_query()

    def series():
        rows = []
        for n in (100, 400, 1600):
            db = random_database(query, n, seed=1)
            _, stats = generic_join(query, db)
            rows.append([n, stats.tuples_touched])
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    print_table("E3 generic join work", ["N", "work"], rows)
    exponent = measured_exponent([r[0] for r in rows], [r[1] for r in rows])
    print(f"  measured exponent {exponent:.2f} (AGM budget: 1.5)")
    assert exponent < 1.6
