"""Ablation A3 — engine design choices.

* LFTJ (trie + leapfrog) vs. hash-based generic join: independent
  implementations, same worst-case-optimality class, agreeing outputs.
* Footnote 1 (FD-aware variable binding) on/off inside both engines:
  it prunes per-branch work but does not change the Ω(N²) skew barrier.
* Data-derived degree constraints on/off for CSMA's CLLP bound.
"""

import pytest

from repro.datagen.worstcase import skew_instance_example_5_8
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.engine.statistics import data_aware_bound_log2
from repro.lattice.builders import lattice_from_query

from helpers import print_table

N = 128
ORDER = ("y", "z", "x", "u")


def test_engines_agree_and_fd_binding_helps(benchmark):
    query, db = skew_instance_example_5_8(N)

    def run():
        out_gj_aware, gj_aware = generic_join(
            query, db, order=ORDER, fd_aware=True
        )
        out_lftj, lftj = leapfrog_triejoin(query, db, order=ORDER)
        return out_gj_aware, gj_aware, out_lftj, lftj

    out_gj, gj_stats, out_lftj, lftj_stats = benchmark.pedantic(
        run, rounds=2, iterations=1
    )
    assert set(out_gj.tuples) == set(out_lftj.project(out_gj.schema).tuples)
    print_table(
        "A3 engine comparison on skew (N = %d)" % N,
        ["engine", "|Q|", "work"],
        [
            ["generic join (fd-aware)", len(out_gj), gj_stats.tuples_touched],
            ["lftj (fd-aware)", len(out_lftj), lftj_stats.tuples_touched],
        ],
    )
    # Both remain super-linear on the skew instance (the Ex. 5.8 barrier).
    assert gj_stats.tuples_touched > (N // 2) ** 2 / 4
    assert lftj_stats.tuples_touched > (N // 2) ** 2 / 4


def test_degree_constraint_discovery(benchmark):
    """Auto-derived constraints tighten the CLLP bound on skewless parts."""
    query, db = skew_instance_example_5_8(N)
    lattice, inputs = lattice_from_query(query)
    plain, aware = benchmark.pedantic(
        lambda: data_aware_bound_log2(db, lattice, inputs),
        rounds=1, iterations=1,
    )
    print_table(
        "A3 data-aware CLLP bound (skew instance)",
        ["bound", "log2"],
        [["cardinalities only", f"{plain:.2f}"],
         ["with measured degrees", f"{aware:.2f}"]],
    )
    assert aware <= plain + 1e-9
