"""E4 — Sec. 2 "Closure": AGM(Q⁺) is tight for simple keys and fails
otherwise.

* Simple key y→z in R,S,T,K 4-cycle: AGM(Q⁺) adds the R·K cover option.
* Counterexample R(x), S(y), T(x,y,z), xy→z with |T| = M >> N²:
  AGM(Q⁺) = M yet |Q| <= N² = GLVV.
"""

import pytest

from repro.core.bounds import agm_bound_log2, closure_bound_log2, glvv_bound_log2
from repro.datagen.product import product_database
from repro.engine.generic_join import generic_join
from repro.fds.fd import FD, FDSet
from repro.query.query import Atom, Query

from helpers import print_table


def four_cycle_with_key() -> Query:
    atoms = [
        Atom("R", ("x", "y")), Atom("S", ("y", "z")),
        Atom("T", ("z", "u")), Atom("K", ("u", "x")),
    ]
    return Query(atoms, FDSet([FD("y", "z")], "xyzu"))


def counterexample() -> Query:
    return Query(
        [Atom("R", ("x",)), Atom("S", ("y",)), Atom("T", ("x", "y", "z"))],
        FDSet([FD("xy", "z")], "xyz"),
    )


def test_simple_key_closure_table(benchmark):
    query = four_cycle_with_key()
    sizes = {"R": 16, "S": 1 << 16, "T": 1 << 16, "K": 16}

    def compute():
        return (
            agm_bound_log2(query, sizes),
            closure_bound_log2(query, sizes),
            glvv_bound_log2(query, sizes)[0],
        )

    agm, closure, glvv = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4 simple key y→z (|R|=|K|=16, |S|=|T|=2^16)",
        ["bound", "log2"],
        [["AGM", f"{agm:.1f}"], ["AGM(Q+)", f"{closure:.1f}"],
         ["GLVV", f"{glvv:.1f}"]],
    )
    # AGM = min(R·T, S·K) = 20 bits; closure adds R·K = 8 bits.
    assert agm == pytest.approx(20.0)
    assert closure == pytest.approx(8.0)
    assert glvv == pytest.approx(closure)  # tight for simple keys


def test_nonsimple_counterexample(benchmark):
    query = counterexample()
    sizes = {"R": 16, "S": 16, "T": 1 << 20}

    def compute():
        return (
            closure_bound_log2(query, sizes),
            glvv_bound_log2(query, sizes)[0],
        )

    closure, glvv = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4 counterexample xy→z (|T| = 2^20 >> N²)",
        ["bound", "log2", "paper"],
        [["AGM(Q+)", f"{closure:.1f}", "M = 20"],
         ["GLVV", f"{glvv:.1f}", "N² = 8"]],
    )
    assert closure == pytest.approx(20.0)
    assert glvv == pytest.approx(8.0)


def test_output_really_is_n_squared(benchmark):
    # Materialize: T = full x,y grid with z = x (key xy). |Q| = N².
    query = counterexample()
    n = 32
    from repro.engine.database import Database
    from repro.engine.relation import Relation

    db = Database(
        [
            Relation("R", ("x",), [(i,) for i in range(n)]),
            Relation("S", ("y",), [(i,) for i in range(n)]),
            Relation(
                "T", ("x", "y", "z"),
                [(i, j, (i * j) % n) for i in range(n) for j in range(n)],
            ),
        ],
        fds=query.fds,
    )
    out, _ = benchmark.pedantic(
        lambda: generic_join(query, db), rounds=2, iterations=1
    )
    assert len(out) == n * n
