"""E14 — Thm. 2.1 / Sec. 3.3: AGM == LLP on Boolean algebras (Eq. (6)).

Random hypergraph queries without fds: the fractional edge cover LP on
the query hypergraph and the LLP on the Boolean-algebra lattice agree,
and the product instance attains them.
"""

import itertools
import random

import pytest

from repro.core.bounds import agm_bound_log2
from repro.datagen.product import product_database
from repro.engine.generic_join import generic_join
from repro.core.bounds import glvv_bound_log2
from repro.query.query import Atom, Query

from helpers import print_table


def random_query(rng: random.Random, n_vars: int = 4, n_atoms: int = 4) -> Query:
    variables = list("wxyz")[:n_vars]
    atoms = []
    for k in range(n_atoms):
        size = rng.randint(1, 3)
        attrs = rng.sample(variables, size)
        atoms.append(Atom(f"R{k}", tuple(attrs)))
    covered = {v for atom in atoms for v in atom.attrs}
    missing = [v for v in variables if v not in covered]
    if missing:
        atoms.append(Atom("Rfix", tuple(missing)))
    return Query(atoms)


def test_agm_equals_llp_random(benchmark):
    def run():
        rng = random.Random(42)
        rows = []
        for trial in range(8):
            query = random_query(rng)
            sizes = {
                atom.name: rng.choice([4, 16, 64, 256])
                for atom in query.atoms
            }
            agm = agm_bound_log2(query, sizes)
            llp = glvv_bound_log2(query, sizes)[0]
            rows.append([trial, f"{agm:.3f}", f"{llp:.3f}"])
            assert agm == pytest.approx(llp, abs=1e-5)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E14 AGM == LLP on random no-fd queries",
                ["trial", "AGM log2", "LLP log2"], rows)


def test_product_instance_tight(benchmark):
    """Thm. 2.1(2): the product database attains the bound."""
    query = Query(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    )
    db = product_database(query, {"x": 4, "y": 8, "z": 4})

    def run():
        out, _ = generic_join(query, db)
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    agm = agm_bound_log2(query, db.sizes())
    assert len(out) == pytest.approx(2 ** agm, rel=0.01)
    print(f"\nE14 product instance: |Q| = {len(out)} = 2^{agm:.2f}")
