"""E17 — large-frontier scaling: the dictionary-encoded data plane.

E16 gates the paper's *shapes* (growth exponents, bit-identical
``tuples_touched``) on sub-second instances; E17 gates the *engineering*
claim of the columnar data plane on ≥1M-row frontiers.  Each workload
runs five times on identical data — decoded plane (``encode=False``,
the PR3 kernel), encoded plane with the ndarray frontier backend forced
*off* (the PR4 row-loop/columnwise kernel), encoded plane with plan
fusion forced *off* (the PR5 per-step spec loop), encoded plane as
shipped (the array-of-int64 frontier engages per ``REPRO_BATCH_NDARRAY``,
``auto`` by default; sharding per ``REPRO_SHARD``; plan fusion per
``REPRO_FUSE``, auto = on), and encoded plane with the PR7 sharded
worker-pool dispatch forced *on* — and must satisfy:

* **Plane equivalence** — identical result sets and bit-identical
  ``tuples_touched`` across all four runs (encoding is a bijection, the
  block backend charges the row-loop's exact counts, and the sharded
  merge is shard-count-independent by construction; any drift is a
  kernel bug, asserted here *and* in ``tests/test_ndarray_frontier.py``
  / ``tests/test_shard_frontier.py``).
* **Speedup** (full sizes only) — the shipped encoded plane must beat
  the decoded plane wall-clock by each workload's gated floor (2× by
  default; see ``SIZES`` for documented per-workload overrides).
  Attribute values are nested composite keys
  (``repro.datagen.large.composite``): the decoded plane re-hashes eight
  components per probe, the encoded plane probes with small ints, flat
  dense tables, or whole int64 columns.
* **Shard speedup** (full sizes, ≥4-CPU hosts only) — the forced-shard
  plane must beat the single-worker encoded plane by ≥1.5× on at least
  two workloads.  On fewer cores the ratio is still measured and
  recorded (``shard_speedup`` per workload) but not gated: a worker
  pool cannot beat one core on one core, and a floor that encodes the
  machine rather than the code is noise.

Six workloads cover the five engine families: the Chain Algorithm on
guarded query (1) skew, SMA's SM-joins on a dense triangle, FD-aware
generic join on a cyclic-key query *and* on the k-step guarded fd chain
(``fdchain`` — the pure expansion-frontier shape the array-of-int64
backend was built for), LFTJ on a dense triangle (seek-dominated), and
CSMA on the degree-bounded triangle of query (2).

The pytest entry point runs the smoke sizes only (CI's ``--quick`` gate);
``python benchmarks/bench_e17_large_frontier.py`` runs the full ≥1M-row
sweep and is what ``benchmarks/run_all.py`` records into
``BENCH_<tag>.json``: per-workload ``tuples_touched``, per-plane ingest
time (datagen + Relation construction + dictionary interning — the
once-per-database cost), the cold first-query time (lazy plan /
dense-table / pipeline / index compilation, amortized exactly like
ingest — ``first_query_s``), the *warm* query wall-clock (the
steady-state cost a serving system actually pays; the gated speedups
compare these — since PR 9, so walls are not comparable to earlier
BENCH files, which timed cold first queries), and the process peak RSS
after each run (the ``ru_maxrss`` high-water mark, monotone over the
sweep).
"""

from __future__ import annotations

import gc
import hashlib
import json
import math
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro import config
from repro.core.chain_algorithm import chain_algorithm
from repro.core.csma import csma
from repro.core.sma import submodularity_algorithm
from repro.datagen.large import (
    fdchain_order,
    large_chain_workload,
    large_csma_workload,
    large_fdchain_workload,
    large_generic_workload,
    large_lftj_workload,
    large_sma_workload,
)
from repro.engine import frontier as frontier_blocks
from repro.engine import fused as frontier_fused
from repro.engine import shard as frontier_shard
from repro.engine.generic_join import generic_join
from repro.engine.leapfrog import leapfrog_triejoin
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.cllp import DegreeConstraint

MIN_SPEEDUP = 2.0

#: The shard-speedup floor (``encoded`` vs ``encoded-sharded`` wall) is
#: only gated on machines that can physically exhibit parallel speedup:
#: on a 1-CPU container every extra worker is pure scheduling overhead
#: and a hard floor would gate on hardware, not code.  On ≥4-CPU hosts
#: at least SHARD_GATE_MIN_WORKLOADS workloads must clear the floor.
SHARD_MIN_SPEEDUP = 1.5
SHARD_GATE_MIN_CPUS = 4
SHARD_GATE_MIN_WORKLOADS = 2

#: The fuse-speedup floor (``encoded-nofuse`` vs ``encoded`` wall) is
#: gated on the fd-chain workload at full size only: fdchain is the
#: workload whose whole hot path is a dense-guard chain, i.e. the shape
#: the composed-gather pipeline exists for.  Fusion needs no extra
#: cores, so the gate applies on any host with numpy; the ratio is
#: recorded per workload everywhere.  The reference 1-CPU container
#: measures 1.30× on the warm fdchain full-size wall; the floor sits
#: below that so scheduler jitter on a shared box cannot flip the gate.
FUSE_MIN_SPEEDUP = 1.15
FUSE_GATE_WORKLOAD = "fdchain"

#: The five execution configurations every workload runs.  ``encoded``
#: is the shipped kernel (ndarray frontier per REPRO_BATCH_NDARRAY, auto
#: by default — engaged at every E17 size; sharding per REPRO_SHARD,
#: which defaults to ``auto`` and stays single-worker on 1-CPU hosts;
#: plan fusion per REPRO_FUSE, auto = on);
#: ``encoded-ndoff`` pins the block backend *and* sharding off (the PR4
#: row-loop/columnwise kernel) so the sweep itself certifies
#: block-vs-row-loop count equality at scale; ``encoded-nofuse`` is the
#: shipped configuration with plan fusion pinned off (the PR5 per-step
#: spec loop) so the sweep certifies fused-vs-unfused bit-identity at
#: full scale and records the fusion speedup; ``encoded-sharded`` forces
#: the PR7 sharded dispatch on at :func:`shard_worker_count` workers, so
#: every sweep certifies shard-vs-single-worker bit-identity at full
#: scale and records the measured shard speedup.
PLANES = (
    "decoded",
    "encoded-ndoff",
    "encoded-nofuse",
    "encoded",
    "encoded-sharded",
)


def shard_worker_count() -> int:
    """Workers for the ``encoded-sharded`` plane: ``REPRO_SHARD_WORKERS``
    when set, else min(4, cpu_count) but never fewer than 2 — the plane
    must actually fan out even on a 1-CPU box (there it measures the
    overhead honestly; the speedup floor is cpu-gated separately)."""
    workers = config.get("REPRO_SHARD_WORKERS", default=0)
    if workers:
        return max(1, workers)
    return max(2, min(4, os.cpu_count() or 1))

#: Smoke sizes run in CI (seconds); full sizes are the ≥1M-row frontiers
#: recorded in BENCH_<tag>.json.  Both are recorded by the full sweep so
#: the CI smoke cross-checks counts against the committed trajectory.
#: ``min_speedup`` overrides the 2× gate per workload: CSMA's true
#: encoded-vs-decoded ratio sits at ~2.0 ± machine noise since the
#: decoded plane's seek fix re-based the baseline (its hot loops are the
#: CD bucketing and step-less memo joins, which the encoding speeds but
#: the block backend deliberately leaves alone) — a gate that flips on
#: scheduler jitter is worse than a documented 1.5× floor.
SIZES = {
    "chain": {"smoke": 20_000, "full": 250_000, "reps": 3},
    "sma": {"smoke": 20_000, "full": 100_000, "reps": 3},
    "generic": {"smoke": 20_000, "full": 350_000, "reps": 3},
    "fdchain": {"smoke": 50_000, "full": 1_000_000, "reps": 2},
    "lftj": {"smoke": 4_000, "full": 60_000, "reps": 2},
    "csma": {"smoke": 20_000, "full": 150_000, "reps": 3, "min_speedup": 1.5},
}


def _prepare_chain(n: int, encode: bool):
    query, db = large_chain_workload(n, encode=encode)
    lattice, inputs = lattice_from_query(query)
    logs = {k: db.log_sizes()[k] for k in inputs}
    _, chain, _ = best_chain_bound(lattice, inputs, logs)

    def execute():
        out, stats = chain_algorithm(query, db, lattice, inputs, chain)
        return set(out.tuples), stats.tuples_touched

    return execute


def _prepare_generic(n: int, encode: bool):
    query, db = large_generic_workload(n, encode=encode)

    def execute():
        out, stats = generic_join(query, db, fd_aware=True)
        return set(out.tuples), stats.tuples_touched

    return execute


def _prepare_lftj(n: int, encode: bool):
    query, db = large_lftj_workload(n, encode=encode)

    def execute():
        out, stats = leapfrog_triejoin(query, db)
        return set(out.tuples), stats.tuples_touched

    return execute


def _prepare_fdchain(n: int, encode: bool):
    query, db = large_fdchain_workload(n, encode=encode)
    order = fdchain_order()

    def execute():
        out, stats = generic_join(query, db, order=order, fd_aware=True)
        return set(out.tuples), stats.tuples_touched

    return execute


def _prepare_sma(n: int, encode: bool):
    query, db = large_sma_workload(n, encode=encode)
    lattice, inputs = lattice_from_query(query)

    def execute():
        out, stats = submodularity_algorithm(query, db, lattice, inputs)
        return set(out.tuples), stats.tuples_touched

    return execute


def _prepare_csma(n: int, encode: bool):
    query, db = large_csma_workload(n, encode=encode)
    lattice, inputs = lattice_from_query(query)
    x = lattice.index(frozenset("x"))
    xy = lattice.index(frozenset("xy"))
    d = db["R"].max_degree(("x",))
    constraint = DegreeConstraint(x, xy, math.log2(max(2, d)), guard="R")

    def execute():
        result = csma(
            query, db, lattice, inputs, extra_degree_constraints=[constraint]
        )
        return set(result.relation.tuples), result.stats.tuples_touched

    return execute


#: name → prepare(n, encode) -> execute() -> (result set, tuples_touched).
#: ``prepare`` covers datagen + ingest (Relation construction, dictionary
#: interning, plan-independent query analysis) — the once-per-database
#: cost; ``execute`` is the timed query run, as a serving system would
#: amortize it.  Ingest time is recorded separately per plane.
RUNNERS = {
    "chain": _prepare_chain,
    "sma": _prepare_sma,
    "generic": _prepare_generic,
    "fdchain": _prepare_fdchain,
    "lftj": _prepare_lftj,
    "csma": _prepare_csma,
}


def peak_rss_kb() -> int:
    """The process RSS high-water mark (kB on Linux), monotone."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def result_digest(out) -> str:
    """An order-independent digest of the (decoded-value) result set.

    Per-row sha1s are summed modulo 2¹²⁸, so the digest never materializes
    the multi-hundred-MB joined-repr string the old sorted-concat digest
    built on ≥10⁵-row outputs; row order (which differs legitimately
    across engines and planes) cannot affect the sum.
    """
    total = 0
    for row in out:
        total += int.from_bytes(
            hashlib.sha1(repr(row).encode()).digest()[:16], "big"
        )
    return f"{total % (1 << 128):032x}"


def run_one(name: str, n: int, plane: str) -> dict:
    """One (workload, size, plane) run in *this* process.

    ``plane`` is one of :data:`PLANES`: ``decoded`` disables the codec,
    ``encoded-ndoff`` runs the encoded kernel with the ndarray frontier
    backend (and sharding) pinned off, ``encoded-nofuse`` pins plan
    fusion off (everything else shipped), ``encoded`` runs the shipped
    configuration (``REPRO_BATCH_NDARRAY`` / ``REPRO_SHARD`` /
    ``REPRO_FUSE`` env respected, all ``auto`` by default),
    ``encoded-sharded`` forces the sharded dispatch on at
    :func:`shard_worker_count` workers.  Each run times the query
    twice: the cold first query (lazy plan/pipeline/index compilation —
    recorded as ``first_query_s``) and a warm second run, whose wall is
    ``wall_s`` — the steady-state cost every speedup and floor
    compares.  Returns
    the measurement plus a digest of the decoded-value result set, so
    isolated runs can be compared across processes.
    """
    encode = plane != "decoded"
    saved_mode = frontier_blocks.NDARRAY_MODE
    saved_shard = (frontier_shard.SHARD_MODE, frontier_shard.SHARD_WORKERS)
    saved_fuse = frontier_fused.FUSE_MODE
    if plane == "encoded-ndoff":
        frontier_blocks.NDARRAY_MODE = "off"
        frontier_shard.SHARD_MODE = "off"
    elif plane == "encoded-nofuse":
        frontier_fused.FUSE_MODE = "off"
    elif plane == "encoded-sharded":
        frontier_shard.SHARD_MODE = "on"
        frontier_shard.SHARD_WORKERS = shard_worker_count()
    profiled = frontier_fused.PROFILE_STEPS
    try:
        prepare = RUNNERS[name]
        gc.collect()
        start = time.perf_counter()
        execute = prepare(n, encode)
        ingest = time.perf_counter() - start
        gc.collect()
        # Warm-up query: expansion plans, guard lookups, dense tables,
        # per-(atom, depth) indexes and fused pipelines all compile
        # lazily on first use, so the first query pays a once-per-
        # database cost a serving system amortizes (exactly like ingest,
        # which is why it is recorded separately as ``first_query_s``).
        # The gated wall is the second, warm run: the steady-state query
        # cost the planes are actually compared on.  Before PR 9 the
        # recorded walls were cold first queries — compile-dominated at
        # full scale, which systematically understated every kernel
        # delta — so PR 9 walls re-baseline and are not comparable to
        # earlier BENCH files.
        start = time.perf_counter()
        out, touched = execute()
        first_query = time.perf_counter() - start
        del out
        gc.collect()
        if profiled:
            frontier_fused.profile_snapshot()  # reset before the timed run
        start = time.perf_counter()
        out, touched = execute()
        wall = time.perf_counter() - start
    finally:
        # Restore for in-process callers (run_workload(isolate=False)):
        # leaking "off" into the subsequent "encoded" run would silently
        # measure the row-loop kernel twice.
        frontier_blocks.NDARRAY_MODE = saved_mode
        frontier_shard.SHARD_MODE, frontier_shard.SHARD_WORKERS = saved_shard
        frontier_fused.FUSE_MODE = saved_fuse
    record = {
        "ingest_s": round(ingest, 4),
        "first_query_s": round(first_query, 4),
        "wall_s": round(wall, 4),
        "tuples_touched": touched,
        "output_rows": len(out),
        "digest": result_digest(out),
        "peak_rss_kb": peak_rss_kb(),
    }
    if profiled:
        # REPRO_PROFILE_STEPS=1: per-spec-kind calls/rows/wall during the
        # timed run, so a fusion win is attributable per step kind.
        record["step_profile"] = frontier_fused.profile_snapshot()
    return record


def _run_isolated(name: str, n: int, plane: str) -> dict:
    """``run_one`` in a fresh interpreter: no allocator or cache state
    bleeds between the planes, and ``peak_rss_kb`` is per-run."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{repo_root / 'src'}:{repo_root / 'benchmarks'}"
    proc = subprocess.run(
        [sys.executable, __file__, "--one", name, str(n), plane],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"E17 child run {name} n={n} {plane} failed "
            f"(exit {proc.returncode}):\n{proc.stderr[-4000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_workload(
    name: str, n: int, isolate: bool = True, reps: int = 1
) -> dict:
    """One workload at one size, on all five planes, with equivalence
    asserts.

    The decoded run IS the PR3 kernel, the ``encoded-ndoff`` run IS the
    PR4 kernel, and the ``encoded-sharded`` run IS the PR7 worker-pool
    dispatch: identical code paths with the codec / block backend /
    sharding toggled.  Result digests and ``tuples_touched`` must match
    exactly across every run — in particular the ndarray frontier
    backend is certified bit-identical to the row-loop backend AND the
    sharded dispatch bit-identical to single-worker *at full scale*, per
    workload, on every sweep.  ``reps`` isolated runs per plane are taken
    and the *minimum* wall recorded — the standard noise filter on shared
    machines (the workload is deterministic; anything above the min is
    interference).
    """
    record: dict = {"n": n}
    results = {}
    for plane in PLANES:
        rows = [
            _run_isolated(name, n, plane)
            if isolate
            else run_one(name, n, plane)
            for _ in range(max(1, reps))
        ]
        for other in rows[1:]:
            assert other["digest"] == rows[0]["digest"]
            assert other["tuples_touched"] == rows[0]["tuples_touched"]
        row = min(rows, key=lambda r: r["wall_s"])
        key = plane.replace("-", "_")
        record[f"ingest_{key}_s"] = min(r["ingest_s"] for r in rows)
        record[f"first_query_{key}_s"] = min(
            r["first_query_s"] for r in rows
        )
        record[f"wall_{key}_s"] = row["wall_s"]
        record[f"peak_rss_kb_{key}"] = max(r["peak_rss_kb"] for r in rows)
        results[plane] = row
    dec, enc = results["decoded"], results["encoded"]
    for plane in PLANES[1:]:
        assert results[plane]["digest"] == dec["digest"], (
            f"{name}: {plane} result diverges from decoded"
        )
        assert results[plane]["tuples_touched"] == dec["tuples_touched"], (
            f"{name}: tuples_touched drifts at {plane} "
            f"({results[plane]['tuples_touched']} != {dec['tuples_touched']})"
        )
    record["tuples_touched"] = enc["tuples_touched"]
    record["output_rows"] = enc["output_rows"]
    # The cross-process/cross-config drift gate for check_regression:
    # the digest is order-independent and identical across all planes
    # (just asserted), so REPRO_SHARD=on and =off sweeps of the same
    # tree must record the same value per workload.
    record["digest"] = enc["digest"]
    record["speedup"] = round(
        record["wall_decoded_s"] / max(record["wall_encoded_s"], 1e-9), 2
    )
    record["ndarray_speedup"] = round(
        record["wall_encoded_ndoff_s"] / max(record["wall_encoded_s"], 1e-9),
        2,
    )
    # encoded-nofuse vs encoded: the generated-pipeline win over the
    # per-step spec loop, everything else identical (shipped knobs).
    record["fuse_speedup"] = round(
        record["wall_encoded_nofuse_s"] / max(record["wall_encoded_s"], 1e-9),
        2,
    )
    # encoded vs encoded-sharded: only a speedup when REPRO_SHARD is not
    # forcing the "encoded" plane to shard too (default env: auto →
    # single-worker below the row threshold / on 1-CPU hosts).
    record["shard_speedup"] = round(
        record["wall_encoded_s"]
        / max(record["wall_encoded_sharded_s"], 1e-9),
        2,
    )
    record["shard_workers"] = shard_worker_count()
    return record


def run_sweep(level: str = "full") -> dict:
    """The E17 sweep: smoke sizes always, full sizes when ``level=full``.

    Returns the ``e17`` payload for ``BENCH_<tag>.json``.
    """
    start = time.perf_counter()
    workloads: dict[str, dict] = {}
    for name, sizes in SIZES.items():
        run_sizes = [sizes["smoke"]]
        if level == "full":
            run_sizes.append(sizes["full"])
        for n in run_sizes:
            key = f"{name}_n{n}"
            # Full (gated) sizes get min-of-N per plane; smoke stays
            # single-shot to keep CI fast.
            workloads[key] = run_workload(
                name,
                n,
                reps=sizes.get("reps", 2) if n == sizes.get("full") else 1,
            )
            print(
                f"  {key:<18} touched={workloads[key]['tuples_touched']:>9}"
                f"  decoded={workloads[key]['wall_decoded_s']:>8.2f}s"
                f"  ndoff={workloads[key]['wall_encoded_ndoff_s']:>8.2f}s"
                f"  nofuse={workloads[key]['wall_encoded_nofuse_s']:>8.2f}s"
                f"  encoded={workloads[key]['wall_encoded_s']:>8.2f}s"
                f"  sharded={workloads[key]['wall_encoded_sharded_s']:>8.2f}s"
                f"  speedup={workloads[key]['speedup']:>6.2f}x",
                flush=True,
            )
    cpus = os.cpu_count() or 1
    payload = {
        "level": level,
        "min_speedup_required": MIN_SPEEDUP,
        "workloads": workloads,
        "wall_clock_s": round(time.perf_counter() - start, 4),
        "peak_rss_kb": peak_rss_kb(),
        "shard": {
            "workers": shard_worker_count(),
            "cpu_count": cpus,
            "mode_env": config.get("REPRO_SHARD"),
            "backend_env": config.get("REPRO_SHARD_BACKEND"),
            "min_speedup_required": SHARD_MIN_SPEEDUP,
            "speedup_gated": cpus >= SHARD_GATE_MIN_CPUS,
        },
        "fuse": {
            "mode_env": config.get("REPRO_FUSE"),
            "native_env": config.get("REPRO_FUSE_NATIVE"),
            "native_active": frontier_fused.native_active(),
            "min_speedup_required": FUSE_MIN_SPEEDUP,
            "gate_workload": FUSE_GATE_WORKLOAD,
        },
    }
    if level == "full":
        total_dec = sum(w["wall_decoded_s"] for w in workloads.values())
        total_enc = sum(w["wall_encoded_s"] for w in workloads.values())
        total_ndoff = sum(
            w["wall_encoded_ndoff_s"] for w in workloads.values()
        )
        payload["overall_speedup"] = round(total_dec / total_enc, 2)
        # The PR4-kernel aggregate against the *same* decoded baseline:
        # the apples-to-apples trajectory comparison now that the
        # decoded plane's seek pathology is fixed (PR 4's recorded 8.1×
        # was measured against the pathological baseline and is not
        # comparable across that fix).
        payload["overall_speedup_ndoff"] = round(total_dec / total_ndoff, 2)
        payload["overall_ndarray_speedup"] = round(total_ndoff / total_enc, 2)
        total_nofuse = sum(
            w["wall_encoded_nofuse_s"] for w in workloads.values()
        )
        payload["overall_fuse_speedup"] = round(total_nofuse / total_enc, 2)
        total_sharded = sum(
            w["wall_encoded_sharded_s"] for w in workloads.values()
        )
        payload["overall_shard_speedup"] = round(total_enc / total_sharded, 2)
    return payload


# ----------------------------------------------------------------------
# pytest entry point (CI --quick smoke)
# ----------------------------------------------------------------------

def test_e17_smoke(benchmark):
    """Smoke sizes: plane equivalence on every workload (wall-clock is
    recorded but not gated at smoke scale — CI runners are noisy)."""
    payload = benchmark.pedantic(
        lambda: run_sweep(level="smoke"), rounds=1, iterations=1
    )
    assert set(payload["workloads"]) == {
        f"{name}_n{sizes['smoke']}" for name, sizes in SIZES.items()
    }
    # run_workload already asserted result/count equivalence per workload.
    for record in payload["workloads"].values():
        assert record["tuples_touched"] > 0


def main(argv: list[str]) -> int:
    if len(argv) == 5 and argv[1] == "--one":
        # Child mode for _run_isolated: one (workload, size, plane) run,
        # JSON on the last stdout line.
        name, n, plane = argv[2], int(argv[3]), argv[4]
        if plane not in PLANES:
            raise SystemExit(f"unknown plane {plane!r} (expected {PLANES})")
        print(json.dumps(run_one(name, n, plane)))
        return 0
    print("E17 large-frontier sweep (full):")
    payload = run_sweep(level="full")
    print(f"overall speedup {payload['overall_speedup']}x "
          f"(wall {payload['wall_clock_s']}s)")
    failures = []
    for name, sizes in SIZES.items():
        record = payload["workloads"][f"{name}_n{sizes['full']}"]
        floor = sizes.get("min_speedup", MIN_SPEEDUP)
        if record["speedup"] < floor:
            failures.append(
                f"{name}: speedup {record['speedup']}x < {floor}x"
            )
    # Fuse-speedup floor: fdchain's whole hot path is a dense-guard
    # chain — the composed-gather pipeline must win there on any host
    # (fusion needs no extra cores).  Ratios on the other workloads are
    # recorded but not gated: their hot paths fuse partially or not at
    # all (choose depths, SM-joins, seeks).
    fdchain_record = payload["workloads"][
        f"{FUSE_GATE_WORKLOAD}_n{SIZES[FUSE_GATE_WORKLOAD]['full']}"
    ]
    if fdchain_record["fuse_speedup"] < FUSE_MIN_SPEEDUP:
        failures.append(
            f"fuse: {FUSE_GATE_WORKLOAD} fused speedup "
            f"{fdchain_record['fuse_speedup']}x < {FUSE_MIN_SPEEDUP}x"
        )
    # Shard-speedup floor: physically meaningless on <4-CPU hosts (a
    # worker pool cannot beat one core on one core), so report there and
    # gate only where hardware permits parallelism.
    shard_meta = payload["shard"]
    full_shard = {
        name: payload["workloads"][f"{name}_n{sizes['full']}"]["shard_speedup"]
        for name, sizes in SIZES.items()
    }
    winners = [
        name for name, s in full_shard.items() if s >= SHARD_MIN_SPEEDUP
    ]
    if shard_meta["speedup_gated"]:
        if len(winners) < SHARD_GATE_MIN_WORKLOADS:
            failures.append(
                f"shard: only {len(winners)} workload(s) reached "
                f"{SHARD_MIN_SPEEDUP}x shard speedup at "
                f"{shard_meta['workers']} workers "
                f"(need {SHARD_GATE_MIN_WORKLOADS}): {full_shard}"
            )
    else:
        print(
            f"NOTE: shard speedup floor ({SHARD_MIN_SPEEDUP}x on "
            f">={SHARD_GATE_MIN_WORKLOADS} workloads) not gated: "
            f"{shard_meta['cpu_count']} CPU(s) < {SHARD_GATE_MIN_CPUS}; "
            f"measured {full_shard} at {shard_meta['workers']} workers"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
