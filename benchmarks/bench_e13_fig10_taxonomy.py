"""E13 — Fig. 10: the lattice taxonomy, regenerated.

For every lattice in the paper's catalog compute: distributive?, chain
bound tight (== GLVV)?, SM bound tight (good SM-proof exists)?, normal?,
and verify every containment the figure draws:

    Boolean ⊂ simple-FD ⊂ distributive ⊂ chain-tight ⊂ SM-tight ⊂ normal
    (all within "all lattices"; M3 outside normal).
"""

from fractions import Fraction

import pytest

from repro.core.proofs import find_good_sm_proof
from repro.lattice.builders import (
    boolean_algebra,
    fig1_lattice,
    fig4_lattice,
    fig5_lattice,
    fig9_lattice,
    m3_query_lattice,
)
from repro.lattice.chains import best_chain_bound
from repro.lattice.properties import is_distributive, is_normal_lattice
from repro.lp.llp import LatticeLinearProgram

from helpers import print_table


def catalog():
    b3 = boolean_algebra("xyz")
    return {
        "boolean3": (
            b3,
            {
                "R": b3.index(frozenset("xy")),
                "S": b3.index(frozenset("yz")),
                "T": b3.index(frozenset("xz")),
            },
        ),
        "fig1": fig1_lattice(),
        "fig4": fig4_lattice(),
        "fig5": fig5_lattice(),
        "fig9": fig9_lattice(),
        "m3": m3_query_lattice(),
    }


def classify(lattice, inputs):
    logs = {name: 1.0 for name in inputs}
    program = LatticeLinearProgram(lattice, inputs, logs)
    solution = program.solve()
    glvv = solution.objective
    chain_value, chain, _ = best_chain_bound(lattice, inputs, logs)
    chain_tight = chain is not None and chain_value <= glvv + 1e-6
    proof = find_good_sm_proof(
        lattice, solution.inequality.weights, inputs, max_steps=12
    )
    sm_tight = proof is not None
    return {
        "distributive": is_distributive(lattice),
        "chain_tight": chain_tight,
        "sm_tight": sm_tight,
        "normal": is_normal_lattice(lattice, inputs),
        "glvv": glvv,
        "chain": chain_value,
    }


EXPECTED = {
    #            dist   chain  sm     normal
    "boolean3": (True,  True,  True,  True),
    "fig1":     (False, True,  True,  True),
    "fig4":     (False, False, True,  True),
    "fig5":     (False, True,  True,  True),
    "fig9":     (False, False, False, True),
    # M3 is chain-tight, hence SM-tight (one SM-step proves the integral
    # cover h(x)+h(y) >= h(1̂)); it is the catalog's only non-normal lattice.
    "m3":       (False, True,  True,  False),
}


def test_taxonomy(benchmark):
    def build():
        return {
            name: classify(lattice, inputs)
            for name, (lattice, inputs) in catalog().items()
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [
            name,
            r["distributive"],
            r["chain_tight"],
            r["sm_tight"],
            r["normal"],
            f"{r['glvv']:.2f}",
            f"{r['chain']:.2f}",
        ]
        for name, r in results.items()
    ]
    print_table(
        "E13 Fig. 10 taxonomy",
        ["lattice", "distrib", "chain=glvv", "sm-proof", "normal",
         "glvv", "chain"],
        rows,
    )
    for name, (dist, chain_t, sm_t, normal) in EXPECTED.items():
        r = results[name]
        assert r["distributive"] == dist, name
        assert r["chain_tight"] == chain_t, name
        assert r["sm_tight"] == sm_t, name
        assert r["normal"] == normal, name

    # The containments of Fig. 10 on this catalog:
    for name, r in results.items():
        if r["distributive"]:
            assert r["chain_tight"], f"{name}: distributive ⇒ chain-tight"
        if r["chain_tight"]:
            assert r["sm_tight"], f"{name}: chain-tight ⇒ SM-tight"
        if not r["normal"]:
            assert name == "m3"
