"""Ablation A1 — chain selection quality (design choice of Sec. 5.1).

DESIGN.md calls out exhaustive good-chain search as a design choice.
This ablation quantifies it on the Fig. 1 skew workload: the best chain
(bound N^{3/2}) vs. the Cor. 5.9 greedy chain vs. the worst good maximal
chain (bound N²) — same algorithm, an asymptotic gap from the chain alone.
"""

import pytest

from repro.core.chain_algorithm import chain_algorithm
from repro.datagen.worstcase import skew_instance_example_5_8
from repro.lattice.builders import lattice_from_query
from repro.lattice.chains import (
    all_maximal_chains,
    best_chain_bound,
    chain_bound,
    dual_shearer_chain,
    is_good_chain,
    shearer_chain,
)

from helpers import print_table

N = 256


def test_chain_quality_ablation(benchmark):
    def run():
        query, db = skew_instance_example_5_8(N)
        lattice, inputs = lattice_from_query(query)
        logs = {k: db.log_sizes()[k] for k in inputs}

        candidates = {}
        _, best, _ = best_chain_bound(lattice, inputs, logs)
        candidates["best (search)"] = best
        candidates["cor-5.9 greedy"] = shearer_chain(
            lattice, list(inputs.values())
        )
        candidates["cor-5.11 dual"] = dual_shearer_chain(
            lattice, list(inputs.values())
        )
        worst = max(
            (
                c
                for c in all_maximal_chains(lattice)
                if is_good_chain(c, inputs.values())
            ),
            key=lambda c: chain_bound(c, inputs, logs)[0],
        )
        candidates["worst maximal"] = worst

        rows = []
        for name, chain in candidates.items():
            bound, _ = chain_bound(chain, inputs, logs)
            _, stats = chain_algorithm(query, db, lattice, inputs, chain)
            rows.append([name, str(chain), f"{bound:.1f}", stats.tuples_touched])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "A1 chain quality on the skew instance (N = %d)" % N,
        ["selection", "chain", "bound log2", "work"],
        rows,
    )
    work = {row[0]: row[3] for row in rows}
    # The searched chain beats the worst good chain by a wide margin.
    assert work["best (search)"] * 3 < work["worst maximal"]
    # The dual construction happens to find the optimal chain here.
    assert work["cor-5.11 dual"] <= work["worst maximal"]
