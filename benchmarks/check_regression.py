"""Bench-trajectory regression gate (used by CI after the E16 sweep).

Compares a freshly-produced ``BENCH_<tag>.json`` against the committed
trajectory baseline::

    python benchmarks/check_regression.py [--strict-e17] FRESH.json [BASELINE.json]

Baseline defaults to the newest committed ``BENCH_PR*.json`` in the repo
root.  ``--strict-e17`` additionally requires the two files to cover the
*identical* E17 workload set — the mode CI uses to pin two fresh sweeps
against each other (ndarray frontier backend forced on vs forced off,
and since PR7 the sharded dispatch forced on vs off: any
``tuples_touched`` or result-digest drift between configurations fails
the gate, and a silently missing workload cannot hide it).
Policy (mirrors PERFORMANCE.md):

* **fail** when a measured E16 growth exponent drifts from the baseline by
  more than ``EXPONENT_TOLERANCE`` — the exponents are the paper's claims
  and must not move across engine generations;
* **fail** when a workload's ``tuples_touched`` changed for an engine the
  kernel contract covers — the counted work is bit-identical by design,
  so any drift means the kernel changed semantics, not just speed;
* **fail** when an E17 large-frontier workload's ``tuples_touched``
  drifts (compared over the workloads present in both files, so a
  ``--quick`` smoke sweep is gated against the committed full sweep's
  smoke sizes);
* **fail** when an E17 workload's result-set ``digest`` drifts, when
  both files record one (they do since PR7) — the digest is
  order-independent over decoded values, so the REPRO_SHARD on/off
  cross gate pins the *answers*, not just the counts; in ``--strict-e17``
  mode a missing digest on either side also fails;
* **warn** (never fail) when the E16 sweep wall-clock or an E17
  workload's encoded wall-clock regressed beyond ``WALL_CLOCK_SLACK``,
  or when a full-size E17 workload's recorded speedup fell below the
  baseline's ``min_speedup_required`` — timing noise on shared CI
  runners is not a correctness signal, but the trajectory should be
  visible in the log.  When the two trajectories record differing host
  CPU counts (the top-level ``host`` block, emitted since PR9), every
  timing warning is annotated as cross-host — the E17 ≥1.5× shard floor
  in particular has never been measured on a ≥4-core box, and the
  trajectory files now say so machine-readably.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPONENT_TOLERANCE = 0.05
WALL_CLOCK_SLACK = 1.5  # fresh may take up to 1.5x the baseline before warning

#: Per-workload counters that are run-shape metadata, not kernel work
#: (branch/restart counts follow the CLLP solve, not the expansion kernel).
_METADATA_KEYS = frozenset({"branches", "restarts"})


def find_default_baseline() -> Path | None:
    """The committed trajectory with the highest PR number."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    return max(candidates)[1] if candidates else None


def host_note(baseline: dict, fresh: dict) -> str:
    """Cross-host qualifier for wall-clock comparisons.

    Trajectories record their machine's parallelism in a top-level
    ``host`` block (``cpu_count`` and the resolved shard worker count)
    since PR9.  When the two files come from differently-provisioned
    machines, every wall-clock and speedup comparison is apples to
    oranges — in particular the E17 ≥1.5× shard floor cannot be judged
    against a baseline taken on a 1-core box.  Returns a suffix to
    append to timing warnings, or ``""`` when the hosts match (or
    either file predates the ``host`` block).
    """
    base_host = baseline.get("host") or {}
    fresh_host = fresh.get("host") or {}
    base_cpus = base_host.get("cpu_count")
    fresh_cpus = fresh_host.get("cpu_count")
    if not base_cpus or not fresh_cpus or base_cpus == fresh_cpus:
        return ""
    return (
        f" [cross-host: baseline ran on {base_cpus} CPUs, fresh on "
        f"{fresh_cpus} — wall-clock and parallel-speedup comparisons "
        "are not like-for-like]"
    )


def compare(
    baseline: dict, fresh: dict, strict_e17: bool = False
) -> tuple[list[str], list[str]]:
    """Returns (failures, warnings)."""
    failures: list[str] = []
    warnings: list[str] = []
    note = host_note(baseline, fresh)
    base_e16 = baseline.get("e16", {})
    fresh_e16 = fresh.get("e16", {})

    base_exp = base_e16.get("exponents", {})
    fresh_exp = fresh_e16.get("exponents", {})
    for name, value in base_exp.items():
        if name not in fresh_exp:
            failures.append(f"exponent {name!r} missing from fresh sweep")
            continue
        drift = abs(fresh_exp[name] - value)
        if drift > EXPONENT_TOLERANCE:
            failures.append(
                f"exponent drift at {name!r}: baseline {value:.4f} vs "
                f"fresh {fresh_exp[name]:.4f} (|Δ| = {drift:.4f} > "
                f"{EXPONENT_TOLERANCE})"
            )

    base_work = base_e16.get("tuples_touched", {})
    fresh_work = fresh_e16.get("tuples_touched", {})
    for workload, engines in base_work.items():
        fresh_engines = fresh_work.get(workload)
        if fresh_engines is None:
            failures.append(f"workload {workload!r} missing from fresh sweep")
            continue
        for engine, count in engines.items():
            if engine in _METADATA_KEYS:
                continue
            fresh_count = fresh_engines.get(engine)
            if fresh_count != count:
                failures.append(
                    f"tuples_touched drift at {workload}/{engine}: "
                    f"baseline {count} vs fresh {fresh_count}"
                )

    base_wall = base_e16.get("wall_clock_s")
    fresh_wall = fresh_e16.get("wall_clock_s")
    if base_wall and fresh_wall and fresh_wall > base_wall * WALL_CLOCK_SLACK:
        warnings.append(
            f"E16 wall-clock regressed: baseline {base_wall}s vs fresh "
            f"{fresh_wall}s (> {WALL_CLOCK_SLACK}x; timing only — not "
            f"failing the gate){note}"
        )

    _compare_e17(
        baseline.get("e17", {}), fresh.get("e17", {}), failures, warnings,
        strict=strict_e17, note=note,
    )
    _compare_serve(baseline.get("serve"), fresh.get("serve"), warnings)
    return failures, warnings


#: Absolute drift in a serving *rate* (rejection/degradation/failure,
#: all in [0, 1]) before the trajectory warns.
SERVE_RATE_SLACK = 0.25
#: Fresh p99 may be up to this multiple of the baseline p99.
SERVE_P99_SLACK = 2.0


def _compare_serve(
    base_serve: dict | None, fresh_serve: dict | None, warnings: list[str]
) -> None:
    """The serving trajectory: warn-only, never fail.

    Latency and throughput are machine- and load-dependent, and the
    chaos rates move with the injected-fault seed — none of that is a
    correctness signal (the serve test suites gate correctness).  But a
    doubled p99 or a rejection rate jumping by 0.25 should be visible in
    the CI log.  Silently skipped when the baseline predates the
    ``serve`` section.
    """
    if not base_serve or not fresh_serve:
        return
    for section in ("closed_loop", "open_loop", "chaos"):
        base_row = base_serve.get(section)
        fresh_row = fresh_serve.get(section)
        if not base_row or not fresh_row:
            continue
        base_p99 = base_row.get("p99_ms")
        fresh_p99 = fresh_row.get("p99_ms")
        if base_p99 and fresh_p99 and fresh_p99 > base_p99 * SERVE_P99_SLACK:
            warnings.append(
                f"serve {section} p99 regressed: baseline {base_p99}ms vs "
                f"fresh {fresh_p99}ms (> {SERVE_P99_SLACK}x; timing only)"
            )
        for rate in ("rejection_rate", "degradation_rate", "failure_rate"):
            base_val = base_row.get(rate)
            fresh_val = fresh_row.get(rate)
            if base_val is None or fresh_val is None:
                continue
            drift = abs(fresh_val - base_val)
            if drift > SERVE_RATE_SLACK:
                warnings.append(
                    f"serve {section} {rate} drifted: baseline {base_val} "
                    f"vs fresh {fresh_val} (|Δ| = {drift:.3f} > "
                    f"{SERVE_RATE_SLACK}; warn-only)"
                )


def _compare_e17(
    base_e17: dict,
    fresh_e17: dict,
    failures: list[str],
    warnings: list[str],
    strict: bool = False,
    note: str = "",
) -> None:
    """The large-frontier gate: counts fail, timings warn.

    Workloads are compared over the intersection of the two files — a
    smoke sweep legitimately lacks the full-size entries — but a baseline
    with an ``e17`` section and a fresh sweep sharing *none* of its
    workloads is a failure (the suite silently vanished).  ``strict``
    (the ndarray on-vs-off CI cross gate) demands identical workload
    sets instead.  ``note`` (from :func:`host_note`) is appended to every
    timing warning when the two trajectories come from hosts with
    differing CPU counts.
    """
    base_workloads = base_e17.get("workloads", {})
    fresh_workloads = fresh_e17.get("workloads", {})
    if strict and set(base_workloads) != set(fresh_workloads):
        failures.append(
            "strict E17 comparison: workload sets differ "
            f"({sorted(set(base_workloads) ^ set(fresh_workloads))})"
        )
    if not base_workloads:
        if strict:
            failures.append("strict E17 comparison: baseline has no workloads")
        return
    common = set(base_workloads) & set(fresh_workloads)
    if not common:
        failures.append("no common E17 workloads between baseline and fresh")
        return
    for name in sorted(common):
        base_row = base_workloads[name]
        fresh_row = fresh_workloads[name]
        if fresh_row.get("tuples_touched") != base_row.get("tuples_touched"):
            failures.append(
                f"E17 tuples_touched drift at {name}: baseline "
                f"{base_row.get('tuples_touched')} vs fresh "
                f"{fresh_row.get('tuples_touched')}"
            )
        # Result-set digests (recorded since PR7; older baselines lack
        # them and are skipped).  The digest is order-independent over
        # decoded values, so two sweeps of the same tree — in particular
        # the REPRO_SHARD=on vs =off CI cross gate — must agree exactly;
        # a drift is a wrong *answer*, worse than a wrong count.
        base_digest = base_row.get("digest")
        fresh_digest = fresh_row.get("digest")
        if base_digest and fresh_digest and base_digest != fresh_digest:
            failures.append(
                f"E17 result digest drift at {name}: baseline "
                f"{base_digest} vs fresh {fresh_digest}"
            )
        elif strict and not (base_digest and fresh_digest):
            failures.append(
                f"strict E17 comparison: digest missing at {name} "
                f"(baseline: {bool(base_digest)}, fresh: {bool(fresh_digest)})"
            )
        base_enc = base_row.get("wall_encoded_s")
        fresh_enc = fresh_row.get("wall_encoded_s")
        if base_enc and fresh_enc and fresh_enc > base_enc * WALL_CLOCK_SLACK:
            warnings.append(
                f"E17 encoded wall-clock regressed at {name}: baseline "
                f"{base_enc}s vs fresh {fresh_enc}s{note}"
            )
    min_speedup = base_e17.get("min_speedup_required")
    if min_speedup and fresh_e17.get("level") == "full":
        for name in sorted(common):
            speedup = fresh_workloads[name].get("speedup")
            base_speedup = base_workloads[name].get("speedup")
            if (
                speedup is not None
                and base_speedup is not None
                and base_speedup >= min_speedup > speedup
            ):
                warnings.append(
                    f"E17 speedup at {name} fell below the gated floor: "
                    f"{speedup}x < {min_speedup}x (baseline "
                    f"{base_speedup}x){note}"
                )


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    strict_e17 = "--strict-e17" in args
    if strict_e17:
        args.remove("--strict-e17")
    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path = Path(args[0])
    if len(args) == 2:
        baseline_path = Path(args[1])
    else:
        baseline_path = find_default_baseline()
        if baseline_path is None:
            print("no committed BENCH_PR*.json baseline found", file=sys.stderr)
            return 2
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    print(f"baseline: {baseline_path.name} (tag {baseline.get('tag')})")
    print(f"fresh:    {fresh_path} (tag {fresh.get('tag')})")

    failures, warnings = compare(baseline, fresh, strict_e17=strict_e17)
    for warning in warnings:
        print(f"WARNING: {warning}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        print(f"{len(failures)} regression(s) against {baseline_path.name}")
        return 1
    print("bench trajectory ok: exponents and tuples_touched match baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
