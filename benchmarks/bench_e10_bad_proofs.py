"""E10/E11 — Figs. 7-8 / Exs. 5.29-5.30: bad SM-proof sequences.

* Fig. 7: the paper's first sequence fails goodness at the last step
  (empty label intersection); a different good sequence exists and the
  search finds it.
* Fig. 8: every step has common labels, yet label 1 never reaches a copy
  of 1̂ — bad for a different reason.
"""

from fractions import Fraction

import pytest

from repro.core.proofs import SMProof, SMStep, find_good_sm_proof
from repro.lattice.builders import fig7_lattice, fig8_lattice

from helpers import print_table


def replay(lat, names, steps):
    """Apply the given label-element steps, returning the proof object."""
    elements = [lat.index(n) for n in names]
    proof = SMProof(lat, list(elements), {i: n for i, n in enumerate(names)})
    handles = {n: i for i, n in enumerate(names)}
    for a_name, b_name in steps:
        a, b = handles[a_name], handles[b_name]
        x, y = proof.elements[a], proof.elements[b]
        meet_item = len(proof.elements)
        proof.elements.extend([lat.meet(x, y), lat.join(x, y)])
        proof.steps.append(SMStep(a, b))
        proof.produced.append((meet_item, meet_item + 1))
        handles[lat.label(proof.elements[meet_item])] = meet_item
        handles[lat.label(proof.elements[meet_item + 1])] = meet_item + 1
    return proof


def test_fig7_paper_sequence_bad(benchmark):
    lat, _ = fig7_lattice()
    proof = benchmark.pedantic(
        lambda: replay(
            lat, ["X", "Y", "Z", "U"],
            [("X", "Y"), ("A", "Z"), ("B", "U"), ("C", "D")],
        ),
        rounds=1, iterations=1,
    )
    good, labels = proof.label_trace()
    print_table(
        "E10 Fig. 7 paper sequence (Ex. 5.29)",
        ["status", "reason"],
        [["BAD", "A(C, D) = ∅ at the last step"]],
    )
    assert not good


def test_fig7_good_sequence_exists(benchmark):
    lat, inputs = fig7_lattice()
    weights = {name: Fraction(1, 2) for name in inputs}
    proof = benchmark.pedantic(
        lambda: find_good_sm_proof(lat, weights, inputs),
        rounds=1, iterations=1,
    )
    assert proof is not None and proof.is_good()
    print("\nE10 good sequence found by search:")
    print(proof.pretty())


def test_fig8_paper_sequence_bad(benchmark):
    lat, _ = fig8_lattice()
    proof = benchmark.pedantic(
        lambda: replay(
            lat, ["X", "Y", "Z", "W"],
            [("X", "Y"), ("Z", "W"), ("A", "D"), ("B", "C")],
        ),
        rounds=1, iterations=1,
    )
    good, labels = proof.label_trace()
    print_table(
        "E11 Fig. 8 paper sequence (Ex. 5.30)",
        ["status", "reason"],
        [["BAD", "label 1 reaches no copy of 1̂"]],
    )
    assert not good
    # Every step did intersect: the failure is only at the final check.
    from repro.core.proofs import _prefix_labels_ok

    assert _prefix_labels_ok(proof)
