"""E15 — Ex. 3.8 / 4.6 / Lemma 4.5: quasi-product materialization.

The canonical embedding of the Fig. 1 optimal polymatroid reproduces the
Ex. 3.8 instance {(i,j,k,i)}: entropies match exactly, the fds hold, and
the instance attains the GLVV bound.
"""

import pytest

from repro.datagen.from_lattice import worst_case_database
from repro.engine.binary_join import binary_join_plan
from repro.lattice.builders import fig1_lattice, fig4_lattice, fig9_lattice
from repro.lattice.embedding import entropy_matches, quasi_product_instance
from repro.lattice.polymatroid import LatticeFunction

from helpers import print_table


def fig1_doubled_optimum():
    lat, inputs = fig1_lattice()
    values = {
        frozenset(): 0,
        frozenset("x"): 1, frozenset("y"): 1, frozenset("z"): 1,
        frozenset("u"): 1,
        frozenset("xy"): 2, frozenset("xu"): 1, frozenset("zu"): 2,
        frozenset("yz"): 2,
        frozenset("xyu"): 2, frozenset("xzu"): 2,
        frozenset("xyzu"): 3,
    }
    return lat, inputs, LatticeFunction.from_mapping(lat, values)


def test_fig1_materialization(benchmark):
    lat, inputs, h = fig1_doubled_optimum()

    def run():
        variables, tuples = quasi_product_instance(h, base=4)
        return variables, tuples

    variables, tuples = benchmark.pedantic(run, rounds=2, iterations=1)
    assert entropy_matches(h, variables, tuples, base=4)
    print_table(
        "E15 Fig. 1 quasi-product (base 4)",
        ["quantity", "value", "paper (Ex. 3.8, N=16)"],
        [
            ["|D|", len(tuples), "N^{3/2} = 64"],
            ["|Π_xy D|", 16, "N = 16"],
        ],
    )
    assert len(tuples) == 4 ** 3
    # x and u collapse to the same coordinate (renaming L(x)=L(u)=a).
    pos = {v: i for i, v in enumerate(variables)}
    for t in tuples:
        assert t[pos["x"]] == t[pos["u"]]


@pytest.mark.parametrize("maker", [fig4_lattice, fig9_lattice])
def test_generic_worst_case_attains_glvv(benchmark, maker):
    lat, inputs = maker()

    def run():
        return worst_case_database(lat, inputs, scale=3)

    query, db, h = benchmark.pedantic(run, rounds=1, iterations=1)
    out, _ = binary_join_plan(query, db)
    assert len(out) == 3 ** int(h.values[h.lattice.top])
