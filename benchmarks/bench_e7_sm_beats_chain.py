"""E7 — Fig. 4 / Exs. 5.18, 5.20, 5.25: SM bound beats every chain.

* Every chain gives N^{3/2} (Ex. 5.18) but the SM-proof gives N^{4/3}
  (Ex. 5.20), matching the co-atomic cover (the lattice is normal).
* SMA computes the quasi-product worst case with work ~N^{4/3}
  (Ex. 5.25's heavy/light execution).
"""

from fractions import Fraction

import pytest

from repro.core.proofs import find_good_sm_proof
from repro.core.sma import submodularity_algorithm
from repro.datagen.worstcase import fig4_instance
from repro.lattice.builders import fig4_lattice, lattice_from_query
from repro.lattice.chains import best_chain_bound
from repro.lp.llp import glvv_bound_log2

from helpers import measured_exponent, print_table


def test_bound_gap(benchmark):
    lat, inputs = fig4_lattice()
    logs = {name: 1.0 for name in inputs}

    def compute():
        chain, _, _ = best_chain_bound(lat, inputs, logs)
        glvv = glvv_bound_log2(lat, inputs, logs)
        return chain, glvv

    chain, glvv = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E7 Fig. 4 bounds",
        ["bound", "exponent", "paper"],
        [["best chain", f"{chain:.3f}", "3/2 (Ex. 5.18)"],
         ["GLVV = SM", f"{glvv:.3f}", "4/3 (Ex. 5.20)"]],
    )
    assert chain == pytest.approx(1.5)
    assert glvv == pytest.approx(4 / 3)


def test_proof_is_papers(benchmark):
    lat, inputs = fig4_lattice()
    weights = {name: Fraction(1, 3) for name in inputs}
    proof = benchmark.pedantic(
        lambda: find_good_sm_proof(lat, weights, inputs),
        rounds=1, iterations=1,
    )
    assert proof is not None and proof.is_good()
    print("\nE7 SM-proof found (cf. Ex. 5.20):")
    print(proof.pretty())


def test_sma_work_exponent(benchmark):
    def series():
        rows = []
        for n in (27, 125, 343):
            query, db = fig4_instance(n)
            lattice, inputs = lattice_from_query(query)
            out, stats = submodularity_algorithm(query, db, lattice, inputs)
            size = len(db["R"])
            assert len(out) == round(size ** (4 / 3))
            rows.append([size, len(out), stats.tuples_touched])
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    print_table("E7 SMA on Fig. 4 worst case", ["N", "|Q|=N^{4/3}", "work"], rows)
    exponent = measured_exponent([r[0] for r in rows], [r[2] for r in rows])
    print(f"  measured exponent {exponent:.2f} (budget 4/3, chain would be 1.5)")
    assert exponent < 1.45
