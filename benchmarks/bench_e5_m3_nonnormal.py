"""E5 — Fig. 3 / Sec. 3.2 / Prop. 4.10: M3 and non-normal polymatroids.

* The XOR entropy (Fig. 3 left) is a polymatroid with positive mutual
  information g(0̂) > 0: not normal.
* On M3 the polymatroid h(atom)=1, h(1̂)=2 violates the co-atomic cover
  inequality h(x)+h(y)+h(z) >= 2h(1̂) (Fig. 3 right).
* The mod-N instance materializes it — beating every quasi-product.
"""

from fractions import Fraction

import pytest

from repro.datagen.worstcase import m3_modular_instance
from repro.engine.binary_join import binary_join_plan
from repro.lattice.builders import boolean_algebra, m3, m3_query_lattice
from repro.lattice.polymatroid import LatticeFunction, entropy_of_instance
from repro.lattice.properties import is_normal_lattice, output_inequality_holds

from helpers import print_table


def test_xor_entropy_not_normal(benchmark):
    b3 = boolean_algebra("xyz")
    tuples = [(a, b, a ^ b) for a in (0, 1) for b in (0, 1)]

    def compute():
        h = entropy_of_instance(b3, tuples, ("x", "y", "z"))
        return h, h.cmi()

    h, g = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E5 XOR entropy (Fig. 3 left)",
        ["element", "h", "g (CMI)"],
        [
            ["x", float(h.at(frozenset("x"))), float(g[b3.index(frozenset("x"))])],
            ["xy", float(h.at(frozenset("xy"))), float(g[b3.index(frozenset("xy"))])],
            ["0̂", 0.0, float(g[b3.bottom])],
        ],
    )
    assert h.is_polymatroid()
    assert not h.is_normal()
    assert g[b3.bottom] > 0  # positive mutual information


def test_m3_cover_inequality_fails(benchmark):
    lat, inputs = m3_query_lattice()
    weights = {name: Fraction(1, 2) for name in inputs}
    holds = benchmark.pedantic(
        lambda: output_inequality_holds(lat, weights, inputs),
        rounds=1, iterations=1,
    )
    assert not holds
    assert not is_normal_lattice(lat, inputs)


def test_mod_n_instance_materializes(benchmark):
    """The instance {(i,j,k) : i+j+k ≡ 0 mod N} has the non-normal
    entropy profile and output N²."""
    n = 16
    query, db = m3_modular_instance(n)
    out, _ = benchmark.pedantic(
        lambda: binary_join_plan(query, db), rounds=1, iterations=1
    )
    print_table(
        "E5 M3 mod-N instance",
        ["N", "|R|", "|Q|", "paper"],
        [[n, n, len(out), "N² beats quasi-product N^{3/2}"]],
    )
    assert len(out) == n * n
    assert n * n > n ** 1.5  # strictly beats the normal/co-atomic bound
